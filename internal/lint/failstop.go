package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldprecover/internal/lint/analysis"
)

// Failstop enforces the persistence fail-stop convention (DESIGN.md §6,
// §10): an error returned by a persist API — WAL append/seal, snapshot
// write, seal-log journal, lease operations — must either propagate to
// the caller or reach a fail-stop sink (fatalc via reportFatal, panic,
// log.Fatal). It must never be dropped: a server that keeps accepting
// reports after its WAL stopped persisting is silently violating the
// durability contract the crash-restart e2es pin. The PR 4 review
// hardening ("failed POST /v1/seal fail-stops the server like a failed
// ticker seal") is the motivating incident.
var Failstop = &analysis.Analyzer{
	Name: "failstop",
	Doc: "errors from persist APIs must propagate or reach a fail-stop " +
		"sink, never be dropped",
	Run: runFailstop,
}

// persistPathFragment identifies the persistence layer by import path.
const persistPathFragment = "internal/persist"

func runFailstop(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFailstopFunc(pass, fd.Body)
		}
	}
	return nil
}

// isPersistErrCall reports whether call invokes a persist-API function
// whose last result is an error.
func isPersistErrCall(info *types.Info, call *ast.CallExpr) bool {
	f := callee(info, call)
	if f == nil || f.Pkg() == nil || !strings.Contains(f.Pkg().Path(), persistPathFragment) {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func checkFailstopFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPersistErrCall(info, call) {
			return true
		}
		name := callName(call)
		// Classify by the statement context the call appears in.
		parent := nearestNonParen(stack)
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "error from %s is dropped; propagate it or fail-stop", name)
		case *ast.GoStmt:
			pass.Reportf(call.Pos(), "go %s discards the error; check it in the goroutine", name)
		case *ast.DeferStmt:
			pass.Reportf(call.Pos(), "defer %s discards the error; use a checked wrapper", name)
		case *ast.AssignStmt:
			checkAssignedError(pass, stack, p, call, name)
		case *ast.ValueSpec:
			checkSpecError(pass, stack, p, call, name)
		default:
			// Return statement, call argument, comparison, send: the
			// error value flows onward — that is propagation.
		}
		return true
	})
}

// callName renders the callee for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "persist call"
}

// nearestNonParen returns the innermost ancestor that is not a
// parenthesis wrapper.
func nearestNonParen(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// checkAssignedError locates the variable the call's error result is
// assigned to and verifies it is meaningfully consumed.
func checkAssignedError(pass *analysis.Pass, stack []ast.Node, as *ast.AssignStmt, call *ast.CallExpr, name string) {
	// Which LHS holds the error? Last result for x, err := f(); the
	// matching position for 1:1 assignments.
	var lhs ast.Expr
	if len(as.Rhs) == 1 {
		lhs = as.Lhs[len(as.Lhs)-1]
	} else {
		for i, r := range as.Rhs {
			if ast.Unparen(r) == call && i < len(as.Lhs) {
				lhs = as.Lhs[i]
			}
		}
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return // assigned through a selector/index: stored, reachable
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "error from %s is discarded with _; propagate it or fail-stop", name)
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	checkErrConsumed(pass, stack, call, obj, name)
}

// checkSpecError handles `var err = call` declarations.
func checkSpecError(pass *analysis.Pass, stack []ast.Node, vs *ast.ValueSpec, call *ast.CallExpr, name string) {
	if len(vs.Names) == 0 {
		return
	}
	id := vs.Names[len(vs.Names)-1]
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "error from %s is discarded with _; propagate it or fail-stop", name)
		return
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		checkErrConsumed(pass, stack, call, obj, name)
	}
}

// checkErrConsumed scans the enclosing function for uses of the error
// variable after the call. The error is handled if any use lets the
// value flow onward (return, call argument, channel send, further
// assignment), or if a nil-comparison guards a block that terminates
// (return, panic, os.Exit, log.Fatal, a *fatal* helper). Otherwise the
// error dead-ends and the finding fires.
func checkErrConsumed(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr, obj types.Object, name string) {
	fnBody := enclosingFuncBody(stack)
	if fnBody == nil {
		return
	}
	info := pass.TypesInfo
	var (
		flows       bool // value escapes: return/arg/send/assign
		compared    bool // participates in a nil comparison
		comparisons []*ast.Ident
	)
	inspectStack(fnBody, func(n ast.Node, useStack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj || id.Pos() <= call.End() {
			return true
		}
		parent := nearestNonParen(useStack)
		if be, ok := parent.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			compared = true
			comparisons = append(comparisons, id)
			return true
		}
		if as, ok := parent.(*ast.AssignStmt); ok {
			// Re-assignment of the variable itself is not a use of the
			// value; appearing on the RHS is.
			for _, l := range as.Lhs {
				if l == id {
					return true
				}
			}
		}
		flows = true
		return true
	})
	if flows {
		return
	}
	if !compared {
		pass.Reportf(call.Pos(), "error from %s is assigned but never checked; propagate it or fail-stop", name)
		return
	}
	// Comparison-only: at least one guarded branch must terminate.
	for _, cmpID := range comparisons {
		if guardedBranchTerminates(info, fnBody, cmpID) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"error from %s is checked but neither propagated nor fail-stopped (no return/panic/fatal in the guarded branch)",
		name)
}

// enclosingFuncBody returns the innermost function body on the stack.
// The walk is rooted at a FuncDecl's body, so when no FuncLit
// intervenes the root block itself is the enclosing body.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	if len(stack) > 0 {
		if b, ok := stack[0].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// guardedBranchTerminates finds the if/switch branch guarded by the
// comparison containing cmpID and reports whether it fail-stops or
// returns.
func guardedBranchTerminates(info *types.Info, fnBody *ast.BlockStmt, cmpID *ast.Ident) bool {
	var result bool
	inspectStack(fnBody, func(n ast.Node, stack []ast.Node) bool {
		if n != ast.Node(cmpID) {
			return true
		}
		// Walk outward to the guarding statement.
		for i := len(stack) - 1; i >= 0; i-- {
			switch s := stack[i].(type) {
			case *ast.IfStmt:
				if result = blockTerminates(info, s.Body); result {
					return false
				}
				if s.Else != nil {
					if blk, ok := s.Else.(*ast.BlockStmt); ok && blockTerminates(info, blk) {
						result = true
						return false
					}
				}
				return false
			case *ast.CaseClause:
				result = stmtsTerminate(info, s.Body)
				return false
			case *ast.ReturnStmt, *ast.CallExpr:
				// The comparison feeds a return or a call — flows.
				result = true
				return false
			}
		}
		return false
	})
	return result
}

func blockTerminates(info *types.Info, b *ast.BlockStmt) bool {
	return stmtsTerminate(info, b.List)
}

// stmtsTerminate reports whether a branch body fail-stops: it returns,
// panics, exits, or calls something fatal-shaped.
func stmtsTerminate(info *types.Info, stmts []ast.Stmt) bool {
	term := false
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				term = true
			case *ast.SendStmt:
				// fatalc <- err style hand-off to a fail-stop channel.
				if chanNameContains(n.Chan, "fatal") {
					term = true
				}
			case *ast.CallExpr:
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					if fun.Name == "panic" || isFatalName(fun.Name) {
						term = true
					}
				case *ast.SelectorExpr:
					if isFatalName(fun.Sel.Name) {
						term = true
					}
					if f := callee(info, n); isPkgFunc(f, "os", "Exit") {
						term = true
					}
				}
			}
			return !term
		})
		if term {
			return true
		}
	}
	return false
}

// isFatalName matches fail-stop sinks by name: Fatal, Fatalf, Fatalln,
// reportFatal, fatal…
func isFatalName(name string) bool {
	return strings.Contains(strings.ToLower(name), "fatal")
}

// chanNameContains reports whether the channel expression's terminal
// name contains the fragment.
func chanNameContains(expr ast.Expr, fragment string) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), fragment)
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), fragment)
	}
	return false
}
