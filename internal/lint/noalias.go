package lint

import (
	"go/ast"
	"go/types"

	"ldprecover/internal/lint/analysis"
)

// Noalias enforces the copy-on-return accessor convention on
// mutex-guarded types (DESIGN.md §10): an exported method on a type
// that embeds a sync.Mutex/RWMutex must not return an internal slice or
// map reachable from the receiver — once the method returns, the lock
// is released and the caller would be reading (or writing) state the
// next locked mutation races with. This is the PR 6 "accessor aliasing
// under -race" lesson (detect tracker target slices, merger
// membership), made mechanical: publish slices.Clone/maps.Clone copies,
// never the field itself. Intentional zero-copy hand-offs (pooled
// buffers whose ownership transfers) take an //ldplint:allow noalias
// directive at the return.
var Noalias = &analysis.Analyzer{
	Name: "noalias",
	Doc: "exported methods on mutex-guarded types must not return internal " +
		"slices or maps without copying",
	Run: runNoalias,
}

func runNoalias(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			named := namedRecvType(pass.TypesInfo, fd)
			if named == nil || !mutexGuarded(named) {
				continue
			}
			recv := receiverObj(pass.TypesInfo, fd)
			if recv == nil {
				continue
			}
			checkAliasReturns(pass, fd, recv)
		}
	}
	return nil
}

// mutexGuarded reports whether the named type's underlying struct holds
// a sync.Mutex or sync.RWMutex field (by value, named or embedded).
func mutexGuarded(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft, ok := st.Field(i).Type().(*types.Named)
		if !ok {
			continue
		}
		obj := ft.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	return false
}

// checkAliasReturns flags return statements that hand out slice/map
// values reachable from the receiver without a copy.
func checkAliasReturns(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var) {
	info := pass.TypesInfo
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure's returns are not the method's returns; aliasing
			// through stored closures is beyond this check.
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			t := info.TypeOf(res)
			if t == nil {
				continue
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
			default:
				continue
			}
			if rootsAtReceiver(info, res, recv) {
				kind := "slice"
				if _, ok := t.Underlying().(*types.Map); ok {
					kind = "map"
				}
				pass.Reportf(res.Pos(),
					"%s returns an internal %s of mutex-guarded %s without copying; use slices.Clone/maps.Clone or copy",
					fd.Name.Name, kind, recv.Type().String())
			}
		}
		return true
	})
}

// rootsAtReceiver reports whether expr is a selector/index/slice chain
// rooted at the receiver variable — i.e. a value that aliases state the
// receiver's mutex guards. A call in the chain (slices.Clone(...),
// x.copy()) breaks it: the returned value is the call's result, not the
// field.
func rootsAtReceiver(info *types.Info, expr ast.Expr, recv *types.Var) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return info.Uses[e] == recv
		default:
			return false
		}
	}
}
