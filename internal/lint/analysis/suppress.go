package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allowlist directive, in the //lint:ignore style:
//
//	//ldplint:allow <analyzer> <justification>
//
// placed either at the end of the offending line or on its own line
// immediately above it. The justification is mandatory: a suppression
// without a recorded reason is itself a finding, because the whole
// point of the allowlist is that every intentional exception to an
// invariant is written down next to the code that takes it.
const directivePrefix = "//ldplint:allow"

// Suppressions indexes the //ldplint:allow directives of one package.
type Suppressions struct {
	// byLine maps file:line to the analyzer names allowed there.
	byLine map[lineKey]map[string]bool
}

type lineKey struct {
	file string
	line int
}

// Covers reports whether a directive for analyzer covers the position.
func (s *Suppressions) Covers(analyzer string, pos token.Position) bool {
	if s == nil {
		return false
	}
	return s.byLine[lineKey{pos.Filename, pos.Line}][analyzer]
}

// ParseSuppressions collects every //ldplint:allow directive in files.
// Malformed directives — a missing analyzer name, an analyzer the
// suite does not know, or a missing justification — are returned as
// diagnostics under the pseudo-analyzer "ldplint" instead of being
// silently ignored or silently applied.
func ParseSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (*Suppressions, []Diagnostic) {
	s := &Suppressions{byLine: make(map[lineKey]map[string]bool)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //ldplint:allowother — not ours.
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Analyzer: "ldplint", Pos: c.Pos(),
						Message: "ldplint:allow directive without an analyzer name"})
					continue
				}
				name := fields[0]
				if known != nil && !known[name] {
					bad = append(bad, Diagnostic{Analyzer: "ldplint", Pos: c.Pos(),
						Message: "ldplint:allow names unknown analyzer " + name})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Analyzer: "ldplint", Pos: c.Pos(),
						Message: "ldplint:allow " + name + " needs a justification"})
					continue
				}
				// The directive covers its own line (end-of-line form)
				// and the next line (own-line form). Covering both is
				// harmless: the analyzer name still has to match.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := lineKey{pos.Filename, line}
					if s.byLine[k] == nil {
						s.byLine[k] = make(map[string]bool)
					}
					s.byLine[k][name] = true
				}
			}
		}
	}
	return s, bad
}
