// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface the ldplint suite needs.
//
// The real go/analysis framework lives outside the standard library,
// and this repository builds offline with no module dependencies, so
// the suite carries its own core: an Analyzer is a named check with a
// Run function, a Pass hands it one type-checked package, and
// diagnostics are plain (position, message) pairs. The API is shaped
// so the analyzers would port to x/tools go/analysis nearly verbatim
// if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ldplint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph invariant statement `ldplint help` and
	// the -flags protocol print.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violated invariant at this site.
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// suppress holds the package's //ldplint:allow directives; nil
	// means nothing is suppressed.
	suppress *Suppressions
	// sink receives every non-suppressed diagnostic.
	sink func(Diagnostic)
}

// Reportf records a finding at pos unless an //ldplint:allow directive
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppress != nil && p.suppress.Covers(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	p.sink(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package is the loader-agnostic input to Run: a parsed and
// type-checked package. Both the go-list-backed loader (internal/
// lint/load) and the fixture loader (internal/lint/linttest) produce
// it.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies each analyzer to the package and returns the combined
// diagnostics sorted by position. Directive parse errors (a malformed
// //ldplint:allow) are reported under the pseudo-analyzer name
// "ldplint" so a bad suppression can never silently widen its reach.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// Test files are out of scope: the invariants govern production
	// code, and tests deliberately sleep, drop teardown errors, and
	// poke at internals. (The standalone loader never sees them; the
	// go vet driver does.)
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	sup, diags := ParseSuppressions(pkg.Fset, files, known)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			suppress:  sup,
			sink:      func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
