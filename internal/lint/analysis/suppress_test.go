package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestDirectiveCoversOwnAndNextLine(t *testing.T) {
	fset, f := parseOne(t, `package p

func f() int {
	//ldplint:allow noalias pooled buffer ownership transfers
	return 1
}
`)
	sup, diags := ParseSuppressions(fset, []*ast.File{f}, map[string]bool{"noalias": true})
	if len(diags) != 0 {
		t.Fatalf("well-formed directive produced diagnostics: %v", diags)
	}
	for _, line := range []int{4, 5} {
		if !sup.Covers("noalias", token.Position{Filename: "fixture.go", Line: line}) {
			t.Errorf("directive does not cover line %d", line)
		}
	}
	if sup.Covers("noalias", token.Position{Filename: "fixture.go", Line: 6}) {
		t.Error("directive leaked past the next line")
	}
	if sup.Covers("failstop", token.Position{Filename: "fixture.go", Line: 5}) {
		t.Error("directive for noalias covered failstop")
	}
}

func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		wantMsg string
	}{
		{"no analyzer", "//ldplint:allow", "without an analyzer name"},
		{"unknown analyzer", "//ldplint:allow bogus because reasons", "unknown analyzer bogus"},
		{"no justification", "//ldplint:allow noalias", "needs a justification"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, f := parseOne(t, "package p\n\n"+tc.comment+"\nvar x int\n")
			sup, diags := ParseSuppressions(fset, []*ast.File{f}, map[string]bool{"noalias": true})
			if len(diags) != 1 {
				t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
			}
			if diags[0].Analyzer != "ldplint" {
				t.Errorf("diagnostic attributed to %q, want pseudo-analyzer ldplint", diags[0].Analyzer)
			}
			if !strings.Contains(diags[0].Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", diags[0].Message, tc.wantMsg)
			}
			if sup.Covers("noalias", token.Position{Filename: "fixture.go", Line: 4}) {
				t.Error("malformed directive still suppressed the next line")
			}
		})
	}
}

func TestUnrelatedDirectivePrefixIgnored(t *testing.T) {
	fset, f := parseOne(t, "package p\n\n//ldplint:allowlist is a different word\nvar x int\n")
	_, diags := ParseSuppressions(fset, []*ast.File{f}, nil)
	if len(diags) != 0 {
		t.Fatalf("non-directive comment produced diagnostics: %v", diags)
	}
}
