// Package lint is the ldplint suite: project-specific static analyzers
// that mechanically enforce the conventions this codebase's correctness
// arguments rest on (DESIGN.md §10). Each analyzer polices one
// invariant that was previously enforced only by review:
//
//	codecbounds — wire codecs bounds-check before allocating and
//	              verify CRC-32C before trusting fields
//	noalias     — accessors on mutex-guarded types publish copies,
//	              never internal slices/maps
//	exactfold   — the exact merge paths stay float-free; persisted
//	              floats round-trip via math.Float64bits
//	failstop    — persistence errors reach fatalc or propagate,
//	              never vanish
//	nowallclock — no wall-clock reads or nondeterministic randomness
//	              in deterministic paths without a justification
//
// Intentional exceptions are written down where they are taken:
//
//	//ldplint:allow <analyzer> <justification>
//
// on the offending line or the line above it. A directive without a
// justification is itself a finding.
package lint

import (
	"go/ast"
	"go/types"

	"ldprecover/internal/lint/analysis"
)

// Analyzers returns the full suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Codecbounds,
		Exactfold,
		Failstop,
		Noalias,
		Nowallclock,
	}
}

// callee resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, type conversions,
// and calls through function-typed values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgFunc reports whether f is the named function (or method) of the
// package with the given import path.
func isPkgFunc(f *types.Func, pkgPath string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isConversion reports whether call is a type conversion, returning
// the target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// basicKindIs reports whether t's core type is a basic type whose info
// bits include the given mask (e.g. types.IsFloat).
func basicKindIs(t types.Type, mask types.BasicInfo) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&mask != 0
}

// inspectStack walks root in source order, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// Returning false prunes the subtree.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Pruned subtrees get no closing f(nil) call, so the node
			// must not be pushed.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// mentionsObj reports whether expr references obj.
func mentionsObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// receiverObj returns the receiver variable of a method declaration,
// or nil.
func receiverObj(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return obj
}

// namedRecvType returns the defined type of a method's receiver
// (unwrapping a pointer), or nil.
func namedRecvType(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
