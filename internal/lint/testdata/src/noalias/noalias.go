// Fixture for the noalias analyzer: exported methods on mutex-guarded
// types must publish copies of internal slices/maps, never the fields
// themselves.
package noalias

import (
	"maps"
	"slices"
	"sync"
)

type Tracker struct {
	mu      sync.RWMutex
	targets []string
	index   map[string]int
}

func (t *Tracker) Targets() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.targets // want "returns an internal slice"
}

func (t *Tracker) Head(n int) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.targets[:n] // want "returns an internal slice"
}

func (t *Tracker) Index() map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.index // want "returns an internal map"
}

func (t *Tracker) TargetsCopy() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return slices.Clone(t.targets) // the clone call breaks the alias chain
}

func (t *Tracker) IndexCopy() map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return maps.Clone(t.index)
}

func (t *Tracker) targetsLocked() []string {
	return t.targets // unexported: callers inside the package hold the lock
}

type Stats struct {
	sync.Mutex
	samples []int64
}

func (s *Stats) Samples() []int64 {
	s.Lock()
	defer s.Unlock()
	return s.samples // want "returns an internal slice"
}

type Plain struct {
	items []int
}

func (p *Plain) Items() []int {
	return p.items // no mutex guards this type: out of scope
}

type Pool struct {
	mu  sync.Mutex
	buf []byte
}

// TakeBuf transfers the pooled buffer zero-copy; ownership moves to
// the caller by convention, so the exception is recorded in place.
func (p *Pool) TakeBuf() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	//ldplint:allow noalias pooled buffer ownership transfers to the caller
	return p.buf
}
