// Fixture for the nowallclock analyzer: no wall-clock reads or global
// nondeterministic randomness in deterministic paths; explicit
// seeded sources and value-only time constructors are fine, and
// intentional exceptions carry an allow directive.
package nowallclock

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func estimateNow() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func sleepy() {
	time.Sleep(time.Second) // want "time.Sleep reads the wall clock"
}

func tick() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

func noisy() float64 {
	return rand.Float64() // want "math/rand.Float64 is nondeterministic"
}

func shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle is nondeterministic"
}

func token(b []byte) {
	crand.Read(b) // want "crypto/rand.Read is nondeterministic"
}

// Methods on an explicit *rand.Rand are the sanctioned pattern: the
// caller controls the seed (internal/rng hands out fixed-seed Rands).
func seeded(r *rand.Rand) float64 {
	return r.Float64()
}

// Pure value construction reads no clock.
func pure(sec int64) time.Time {
	return time.Unix(sec, 0)
}

// Recorded exception: retry jitter sits outside the deterministic
// replay path.
func jittered(base time.Duration) {
	//ldplint:allow nowallclock retry jitter is outside the deterministic replay path
	time.Sleep(base)
}
