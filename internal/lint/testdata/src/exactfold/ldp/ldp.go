// Fixture for the exactfold analyzer, ldp scope: Tally merge methods
// must stay float-free.
package ldp

type Tally struct {
	Counts []int64
	Eps    float64
}

// MergeInto is the exact fold: int64 addition only.
func (t *Tally) MergeInto(other *Tally) {
	for i := range t.Counts {
		t.Counts[i] += other.Counts[i]
	}
}

// MergeScaled smuggles a float conversion and float multiply into the
// fold.
func (t *Tally) MergeScaled(other *Tally, w float64) {
	for i := range t.Counts {
		t.Counts[i] += int64(float64(other.Counts[i]) * w) // want "conversion to float64" "floating-point arithmetic"
	}
}

// MergeDamped hides the rounding behind a float literal.
func (t *Tally) MergeDamped(other *Tally) {
	for i := range t.Counts {
		d := 0.5 // want "float literal"
		_ = d
		t.Counts[i] += other.Counts[i]
	}
}

// Estimate is allowed to use floats: estimation is a read-only
// consumer of sealed counts, not a fold.
func (t *Tally) Estimate() float64 {
	return float64(len(t.Counts)) * t.Eps
}

// mergeChunk is in scope by name regardless of export: the parallel
// merge splits into unexported chunk helpers.
func (t *Tally) mergeChunk(other *Tally, lo, hi int) {
	for i := lo; i < hi; i++ {
		t.Counts[i] += other.Counts[i]
	}
}
