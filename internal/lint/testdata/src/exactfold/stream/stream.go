// Fixture for the exactfold analyzer, stream scope: the SealCounts /
// AddPartial hand-off into the epoch manager must stay float-free.
package stream

import "math"

type epoch struct {
	counts []int64
	scale  float64
}

// SealCounts folds a sealed tally into the epoch; the math.Round call
// and the division both re-introduce rounding.
func SealCounts(e *epoch, counts []int64) {
	for i := range counts {
		e.counts[i] += int64(math.Round(float64(counts[i]) / e.scale)) // want "math.Round returns a float" "conversion to float64" "floating-point arithmetic"
	}
}

// AddPartial is the exact form.
func AddPartial(e *epoch, counts []int64) {
	for i := range counts {
		e.counts[i] += counts[i]
	}
}

// Rescale is out of scope by name: not part of the fold family.
func Rescale(e *epoch, f float64) {
	e.scale *= f
}
