// Fixture for the exactfold analyzer, persist scope: WAL replay folds
// stay float-free, and snapshot floats round-trip as raw bits rather
// than through value conversions.
package persist

import "math"

type record struct {
	ID     int
	Delta  int64
	Weight float64
}

// replayRecords is the boot-time fold; the weighted variant breaks
// exactness and truncates on the way back to int64.
func replayRecords(counts []int64, recs []record) {
	for _, r := range recs {
		counts[r.ID] += int64(r.Weight * 2) // want "floating-point arithmetic" "truncates"
	}
}

// applyDelta is the exact form.
func applyDelta(counts []int64, recs []record) {
	for _, r := range recs {
		counts[r.ID] += r.Delta
	}
}

// encodeEpsilon converts instead of reinterpreting: the fraction is
// silently dropped.
func encodeEpsilon(eps float64) uint64 {
	return uint64(eps) // want "truncates; round-trip snapshot floats with math.Float64bits"
}

// encodeEpsilonBits is the sanctioned round-trip.
func encodeEpsilonBits(eps float64) uint64 {
	return math.Float64bits(eps)
}

// decodeEpsilon converts the raw bits as a value: garbage.
func decodeEpsilon(bits uint64) float64 {
	return float64(bits) // want "decode snapshot floats with math.Float64frombits"
}

// decodeEpsilonBits is the sanctioned round-trip.
func decodeEpsilonBits(bits uint64) float64 {
	return math.Float64frombits(bits)
}

// Constant conversions are exact by definition and exempt.
var defaultEps = float64(1)
