// Fixture for the nowallclock scope rule: the examples tree holds
// illustrative programs, not deterministic paths, and is skipped
// wholesale — this wall-clock read must produce no finding.
package demo

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
