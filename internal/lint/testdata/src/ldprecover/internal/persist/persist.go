// Fake persist package for the failstop fixture: the analyzer
// identifies persist APIs by import path (internal/persist), so this
// fixture reproduces the path under testdata/src.
package persist

import "errors"

var ErrClosed = errors.New("wal closed")

type WAL struct{}

func (w *WAL) Append(b []byte) error { return nil }

func (w *WAL) Seal() error { return nil }

func (w *WAL) Sync() (int, error) { return 0, nil }

func Open(path string) (*WAL, error) { return &WAL{}, nil }
