// Fixture for the failstop analyzer: errors from persist APIs must
// propagate or reach a fail-stop sink, never vanish.
package failstop

import (
	"log"

	"ldprecover/internal/persist"
)

var fatalc = make(chan error, 1)

func dropped(w *persist.WAL, b []byte) {
	w.Append(b) // want "error from Append is dropped"
}

func blanked(w *persist.WAL, b []byte) {
	_ = w.Append(b) // want "discarded with _"
}

func tupleBlanked(w *persist.WAL) int {
	n, _ := w.Sync() // want "discarded with _"
	return n
}

func goDropped(w *persist.WAL, b []byte) {
	go w.Append(b) // want "discards the error; check it in the goroutine"
}

func deferDropped(w *persist.WAL) {
	defer w.Seal() // want "discards the error"
}

func swallowed(w *persist.WAL, b []byte) {
	if err := w.Append(b); err != nil { // want "neither propagated nor fail-stopped"
		println("append failed")
	}
}

// The fail-stop forms: hand the error to the fatal channel, a fatal
// logger, or a panic.
func failStops(w *persist.WAL, b []byte) {
	if err := w.Append(b); err != nil {
		fatalc <- err
	}
}

func logsFatal(w *persist.WAL) {
	if err := w.Seal(); err != nil {
		log.Fatalf("seal: %v", err)
	}
}

func panics(w *persist.WAL) {
	if err := w.Seal(); err != nil {
		panic(err)
	}
}

// The propagating forms.
func propagates(w *persist.WAL, b []byte) error {
	if err := w.Append(b); err != nil {
		return err
	}
	return w.Seal()
}

func wraps(w *persist.WAL, b []byte) error {
	err := w.Append(b)
	return wrapErr(err)
}

func wrapErr(err error) error { return err }

// A goroutine that checks inside itself is fine: the closure is the
// enclosing function.
func goChecked(w *persist.WAL, b []byte) {
	go func() {
		if err := w.Append(b); err != nil {
			fatalc <- err
		}
	}()
}

// Recorded exception: best-effort sync on a shutdown path.
func bestEffortShutdown(w *persist.WAL) {
	//ldplint:allow failstop best-effort sync on shutdown; the process is exiting either way
	_, _ = w.Sync()
}

// Collecting errors for a combined return is propagation.
func closeAll(ws []*persist.WAL) []error {
	var errs []error
	for _, w := range ws {
		errs = append(errs, w.Seal())
	}
	return errs
}
