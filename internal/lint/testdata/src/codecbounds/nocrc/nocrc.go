// Fixture for the codecbounds missing-CRC rule: the Tally/Partial/
// Announce frame family carries a CRC-32C trailer, so a decoder with
// one of those names that never touches hash/crc32 cannot be
// verifying it.
package nocrc

import (
	"encoding/binary"
	"errors"

	"codecbounds"
)

var errFrame = errors.New("bad frame")

const maxDomain = 1 << 26

func UnmarshalTally(b []byte) ([]int64, error) { // want "never verifies a CRC-32C"
	if len(b) < 8 {
		return nil, errFrame
	}
	d := int(binary.LittleEndian.Uint32(b[:4]))
	if d < 0 || d > maxDomain {
		return nil, errFrame
	}
	return make([]int64, d), nil
}

// UnmarshalPartial delegates to a CRC-required decoder; the callee is
// held to the invariant, so the wrapper inherits its verification.
func UnmarshalPartial(b []byte) (*codecbounds.Tally, error) {
	return codecbounds.UnmarshalTally(b)
}
