// Fixture for the codecbounds analyzer: wire decoders must
// bounds-check wire-derived lengths before allocating and verify the
// frame CRC-32C before any wire-derived allocation.
package codecbounds

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var errFrame = errors.New("bad frame")

const maxDomain = 1 << 26

type Tally struct {
	Counts []int64
}

// UnmarshalTally is the well-formed decoder: CRC verified first, the
// wire-derived length bound before it drives an allocation.
func UnmarshalTally(b []byte) (*Tally, error) {
	if len(b) < 12 {
		return nil, errFrame
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, errFrame
	}
	d := int(binary.LittleEndian.Uint32(body[4:8]))
	if d < 0 || d > maxDomain {
		return nil, errFrame
	}
	t := &Tally{Counts: make([]int64, d)}
	return t, nil
}

// UnmarshalPartial checksums the frame but allocates from an unchecked
// wire length.
func UnmarshalPartial(b []byte) ([]int64, error) {
	if len(b) < 8 {
		return nil, errFrame
	}
	if crc32.Checksum(b[:len(b)-4], castagnoli) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, errFrame
	}
	d := int(binary.LittleEndian.Uint32(b[:4]))
	out := make([]int64, d) // want "without a prior bounds check"
	return out, nil
}

// UnmarshalAnnounce reads the length inline inside make, so it cannot
// have been bounds-checked.
func UnmarshalAnnounce(b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, errFrame
	}
	if crc32.Checksum(b[:len(b)-4], castagnoli) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, errFrame
	}
	out := make([]byte, binary.LittleEndian.Uint16(b)) // want "read inline"
	return out, nil
}

// ValidateSpanFrame bounds-checks correctly but allocates before the
// CRC is verified, letting a corrupt frame drive the allocation.
func ValidateSpanFrame(b []byte) error {
	if len(b) < 8 {
		return errFrame
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxDomain {
		return errFrame
	}
	buf := make([]byte, n) // want "before the CRC-32C check"
	copy(buf, b[4:])
	if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return errFrame
	}
	return nil
}

// UnmarshalLegacy takes a recorded exception: the 16-bit wire type
// already caps the length.
func UnmarshalLegacy(b []byte) []byte {
	n := int(binary.LittleEndian.Uint16(b))
	//ldplint:allow codecbounds length is capped at 64 KiB by the 16-bit wire type
	return make([]byte, n)
}

// UnmarshalHeader re-derives its length locally: no wire taint, no
// finding.
func UnmarshalHeader(b []byte) []byte {
	n := len(b) / 2
	return make([]byte, n)
}
