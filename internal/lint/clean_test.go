package lint

import (
	"testing"

	"ldprecover/internal/lint/analysis"
	"ldprecover/internal/lint/load"
)

// TestRepoIsClean runs the full ldplint suite over the real tree and
// fails on any finding: the invariants the analyzers enforce are
// supposed to hold everywhere, with every intentional exception
// already carrying its //ldplint:allow directive.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped with -short")
	}
	pkgs, err := load.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(&pkg.Package, Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
