// Package load turns package patterns into type-checked packages for
// the ldplint analyzers, using only the standard library and the go
// tool itself.
//
// The conventional driver for go/analysis is golang.org/x/tools/go/
// packages, which this offline-built repository cannot depend on. The
// same information is available from `go list -export -deps -json`:
// the file sets of the packages under analysis plus compiled export
// data for every dependency, which go/importer's gc importer can read
// directly. Loading therefore costs one `go list` invocation (which
// populates the build cache) plus an in-process parse and type-check
// of just the packages being linted.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"ldprecover/internal/lint/analysis"
)

// Package is one type-checked package under analysis.
type Package struct {
	analysis.Package
	ImportPath string
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns (with -deps, so export data exists for every
// dependency), then parses and type-checks each matched non-dependency
// package. All packages share one token.FileSet.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,ImportMap,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pc := p
			targets = append(targets, &pc)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: ldplint cannot analyze cgo packages", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, t *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: importMapper{imp, t.ImportMap}}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		Package: analysis.Package{
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		},
		ImportPath: t.ImportPath,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// newExportImporter returns a gc-export-data importer resolving import
// paths through the given path→file map. One importer is shared across
// every package in a Load, so each dependency's export data is read
// once.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// importMapper applies one package's ImportMap (vendoring, test
// variants) before delegating to the shared export importer.
type importMapper struct {
	base types.Importer
	m    map[string]string
}

func (im importMapper) Import(path string) (*types.Package, error) {
	if mapped, ok := im.m[path]; ok {
		path = mapped
	}
	return im.base.Import(path)
}
