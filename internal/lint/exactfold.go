package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"ldprecover/internal/lint/analysis"
)

// Exactfold enforces the exactness contract of the merge tree
// (DESIGN.md §10): the paths whose bit-identical-to-single-node
// guarantee rests on exact int64 addition — Tally.Merge*/MergeParallel,
// the epoch manager's SealCounts hand-off, and the WAL replay folds —
// must contain no floating-point arithmetic, float literals, or float
// conversions. One float anywhere in a fold re-introduces rounding, and
// with it order-dependence: the cluster/tree equivalence e2es would
// only catch it for the shapes they happen to run. Additionally,
// persisted snapshot floats must round-trip through math.Float64bits /
// Float64frombits (the PR 4 "floats as raw bits" rule): a float↔integer
// *conversion* in internal/persist truncates the value instead of
// preserving its bit pattern.
var Exactfold = &analysis.Analyzer{
	Name: "exactfold",
	Doc: "exact merge paths must be float-free; persisted floats must " +
		"round-trip via math.Float64bits/Float64frombits",
	Run: runExactfold,
}

// exactScope names one family of exact-fold functions: package name,
// optional receiver type name, and a function-name pattern.
type exactScope struct {
	pkg  string
	recv string
	name *regexp.Regexp
}

// exactScopes lists the fold families. Matching is by package *name*
// (ldp, stream, persist), not import path, so analysistest fixtures can
// reproduce the scope.
var exactScopes = []exactScope{
	// The sealed-tally folds: Merge, MergeInto, MergeParallel and their
	// chunk helpers.
	{pkg: "ldp", recv: "Tally", name: regexp.MustCompile(`(?i)^merge`)},
	// The merge-on-arrival hand-off into the epoch manager, and the
	// partial-tally fold.
	{pkg: "stream", recv: "", name: regexp.MustCompile(`^(SealCounts|AddPartial)$`)},
	// WAL replay: everything that re-folds logged records at boot.
	{pkg: "persist", recv: "", name: regexp.MustCompile(`(?i)replay|^apply`)},
}

func runExactfold(pass *analysis.Pass) error {
	pkgName := pass.Pkg.Name()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inExactScope(pass, pkgName, fd) {
				checkFloatFree(pass, fd)
			}
		}
	}
	if pkgName == "persist" {
		for _, f := range pass.Files {
			checkBitRoundTrip(pass, f)
		}
	}
	return nil
}

func inExactScope(pass *analysis.Pass, pkgName string, fd *ast.FuncDecl) bool {
	for _, s := range exactScopes {
		if s.pkg != pkgName || !s.name.MatchString(fd.Name.Name) {
			continue
		}
		if s.recv == "" {
			return true
		}
		if named := namedRecvType(pass.TypesInfo, fd); named != nil && named.Obj().Name() == s.recv {
			return true
		}
	}
	return false
}

// checkFloatFree reports every floating-point expression inside an
// exact fold.
func checkFloatFree(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	isFloat := func(t types.Type) bool {
		return t != nil && basicKindIs(t, types.IsFloat|types.IsComplex)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.FLOAT {
				pass.Reportf(n.Pos(), "float literal in exact fold %s", fd.Name.Name)
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
				if isFloat(info.TypeOf(n)) {
					pass.Reportf(n.Pos(),
						"floating-point arithmetic in exact fold %s breaks bit-identical merging",
						fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			if target, ok := isConversion(info, n); ok {
				if isFloat(target) {
					pass.Reportf(n.Pos(),
						"conversion to %s in exact fold %s breaks bit-identical merging",
						target.String(), fd.Name.Name)
				}
				return true
			}
			if f := callee(info, n); f != nil && f.Pkg() != nil && f.Pkg().Path() == "math" {
				if sig, ok := f.Type().(*types.Signature); ok && sig.Results().Len() > 0 &&
					isFloat(sig.Results().At(0).Type()) {
					pass.Reportf(n.Pos(), "math.%s returns a float inside exact fold %s", f.Name(), fd.Name.Name)
				}
			}
		}
		return true
	})
}

// checkBitRoundTrip flags float↔integer conversions anywhere in the
// persist package: a snapshot codec that converts instead of using
// math.Float64bits/Float64frombits silently truncates values and breaks
// the bit-identical restore guarantee. Conversions of untyped constants
// are exempt (they are exact by definition).
func checkBitRoundTrip(pass *analysis.Pass, f *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		target, ok := isConversion(info, call)
		if !ok {
			return true
		}
		argTV, ok := info.Types[call.Args[0]]
		if !ok || argTV.Value != nil {
			return true // constant conversion: exact
		}
		src := argTV.Type
		switch {
		case basicKindIs(target, types.IsInteger) && basicKindIs(src, types.IsFloat):
			pass.Reportf(call.Pos(),
				"float→%s conversion in persist truncates; round-trip snapshot floats with math.Float64bits",
				target.String())
		case basicKindIs(target, types.IsFloat) && basicKindIs(src, types.IsInteger):
			pass.Reportf(call.Pos(),
				"%s→float conversion in persist; decode snapshot floats with math.Float64frombits",
				src.String())
		}
		return true
	})
}
