package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"ldprecover/internal/lint/analysis"
)

// Nowallclock enforces the determinism convention (DESIGN.md §10): the
// recovery, estimation, and detection paths must be pure functions of
// their inputs — replaying the same WAL or re-running the same
// estimate must produce the same answer, which the equivalence e2es
// rely on. Wall-clock reads (time.Now and friends) and global
// nondeterministic randomness (math/rand, crypto/rand) smuggle hidden
// inputs into those paths. Legitimate uses — the epoch ticker that
// drives seals, jittered retry backoff, lease expiry stamping — are
// few and intentional, and each carries an
//
//	//ldplint:allow nowallclock <justification>
//
// directive at the call site. internal/rng is the sanctioned seeded
// source for anything that needs randomness inside a deterministic
// path.
var Nowallclock = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "no wall-clock reads or nondeterministic randomness outside " +
		"allowlisted call sites",
	Run: runNowallclock,
}

// wallClockFuncs are the time package entry points that read or depend
// on the wall/monotonic clock. Pure-value helpers (time.Duration math,
// time.Unix, time.Date, Parse) are fine.
var wallClockFuncs = []string{
	"Now", "Since", "Until", "After", "Tick", "Sleep",
	"NewTicker", "NewTimer", "AfterFunc",
}

// randFuncs are the package-level math/rand(/v2) entry points backed by
// the global, time-seeded source, plus the constructors for new
// sources. Methods on an explicit *rand.Rand are not flagged: a Rand
// built from internal/rng's fixed seed IS the sanctioned pattern.
var randFuncs = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n", "Int64", "Int64N",
	"Int32", "Int32N", "IntN", "Uint32", "Uint64", "Uint64N", "UintN",
	"Float32", "Float64", "ExpFloat64", "NormFloat64", "Perm", "Shuffle",
	"Seed", "New", "NewSource", "NewPCG", "NewChaCha8",
}

// nowallclockSkipsPkg reports whether the package is out of scope: the
// lint tooling itself and the examples tree (illustrative programs, not
// deterministic paths).
func nowallclockSkipsPkg(path string) bool {
	return strings.Contains(path, "internal/lint") ||
		strings.HasPrefix(path, "ldprecover/examples")
}

func runNowallclock(pass *analysis.Pass) error {
	if nowallclockSkipsPkg(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: a method on *rand.Rand or on
			// time.Timer has a receiver and is driven by an explicit
			// value the caller controls.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				for _, name := range wallClockFuncs {
					if fn.Name() == name {
						pass.Reportf(call.Pos(),
							"time.%s reads the wall clock in a deterministic path; inject the clock or add //ldplint:allow nowallclock <why>",
							fn.Name())
						break
					}
				}
			case "math/rand", "math/rand/v2":
				for _, name := range randFuncs {
					if fn.Name() == name {
						pass.Reportf(call.Pos(),
							"%s.%s is nondeterministic; use internal/rng's seeded source or add //ldplint:allow nowallclock <why>",
							fn.Pkg().Path(), fn.Name())
						break
					}
				}
			case "crypto/rand":
				pass.Reportf(call.Pos(),
					"crypto/rand.%s is nondeterministic; use internal/rng's seeded source or add //ldplint:allow nowallclock <why>",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
