// Package linttest runs ldplint analyzers over fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under testdata/src/<import-path>/, and every line that
// should trigger a finding carries a
//
//	// want "regexp"
//
// comment (several quoted regexps may follow one want). The test fails
// on any diagnostic without a matching want and on any want without a
// matching diagnostic, so fixtures pin both the positive and the
// negative behavior of each analyzer.
//
// Fixture imports resolve in two steps: an import path that exists as
// a directory under testdata/src is loaded (and analyzed types become
// visible to the importer, so fixtures can fake e.g. a persist
// package), anything else goes to the standard library via the source
// importer — which needs no compiled export data and therefore works
// in this repository's offline build.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ldprecover/internal/lint/analysis"
)

// Run loads each fixture package and checks the analyzer's diagnostics
// (plus any "ldplint" directive diagnostics) against its want
// expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(&pkg.Package, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, path, l.fset, pkg.Files, diags)
	}
}

// loader type-checks fixture packages with an importer that prefers
// testdata/src and falls back to the standard library.
type loader struct {
	srcDir string
	fset   *token.FileSet
	std    types.Importer
	cache  map[string]*fixturePkg
}

type fixturePkg struct {
	analysis.Package
}

func newLoader(srcDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcDir: srcDir,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*fixturePkg),
	}
}

// Import implements types.Importer over the two-step resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if fp, err := l.load(path); err == nil {
		return fp.Types, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return l.std.Import(path)
}

// load parses and type-checks the fixture package at srcDir/path. A
// missing directory returns an os.IsNotExist error so Import can fall
// back to the standard library.
func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.cache[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %s: no .go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	fp := &fixturePkg{Package: analysis.Package{
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}}
	l.cache[path] = fp
	return fp, nil
}

// expectation is one parsed want clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, path string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var exps []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				exps = append(exps, parseWant(t, fset, c)...)
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, e := range exps {
			if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic in %s: [%s] %s", pos, path, d.Analyzer, d.Message)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.re)
		}
	}
}

// parseWant extracts the quoted regexps from a // want comment.
func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return nil
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
	if !ok {
		return nil
	}
	pos := fset.Position(c.Pos())
	var exps []*expectation
	rest := strings.TrimSpace(text)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Errorf("%s: malformed want comment %q: %v", pos, c.Text, err)
			return exps
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Errorf("%s: malformed want pattern %q: %v", pos, q, err)
			return exps
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Errorf("%s: want pattern %q does not compile: %v", pos, pat, err)
			return exps
		}
		exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(exps) == 0 {
		t.Errorf("%s: want comment with no patterns: %q", pos, c.Text)
	}
	return exps
}
