package experiment

import (
	"strings"
	"testing"
)

// tinyConfig keeps figure smoke tests fast.
func tinyConfig() Config {
	return Config{Scale: 0.01, Trials: 2, Seed: 42}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestSciFixedFormat(t *testing.T) {
	if sci(5.89e-4) != "5.89E-04" {
		t.Fatalf("sci = %q", sci(5.89e-4))
	}
	if fixed(0.5) != "+0.500" {
		t.Fatalf("fixed = %q", fixed(0.5))
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper table/figure has a registered generator.
	want := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig8", "fig9", "fig10"}
	for _, id := range want {
		if Registry[id] == nil {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(RegistryOrder) != len(want) {
		t.Fatalf("registry order has %d entries", len(RegistryOrder))
	}
	for _, id := range RegistryOrder {
		if Registry[id] == nil {
			t.Fatalf("order lists unknown id %q", id)
		}
	}
	for _, id := range AblationOrder {
		if AblationRegistry[id] == nil {
			t.Fatalf("ablation order lists unknown id %q", id)
		}
	}
}

func TestFigure3Smoke(t *testing.T) {
	tables, err := Figure3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables want 2", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != len(figure3Combos) {
			t.Fatalf("table %q has %d rows", tb.Title, len(tb.Rows))
		}
	}
}

func TestFigure4Smoke(t *testing.T) {
	tables, err := Figure4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected shape")
	}
}

func TestFigure5Smoke(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 { // beta, epsilon, eta sweeps
		t.Fatalf("%d tables want 3", len(tables))
	}
	if len(tables[0].Rows) != len(betaSweep) {
		t.Fatalf("beta sweep has %d rows", len(tables[0].Rows))
	}
}

func TestFigure7Smoke(t *testing.T) {
	tables, err := Figure7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != len(beta2Sweep) {
		t.Fatalf("unexpected shape")
	}
}

func TestTableISmoke(t *testing.T) {
	tables, err := TableI(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected shape")
	}
}

func TestFigure8Smoke(t *testing.T) {
	tables, err := Figure8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != len(beta2Sweep) {
		t.Fatal("unexpected shape")
	}
}

func TestFigure9Smoke(t *testing.T) {
	tables, err := Figure9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != len(xiSweep) {
		t.Fatal("unexpected shape")
	}
}

func TestFigure10Smoke(t *testing.T) {
	tables, err := Figure10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != len(beta2Sweep) {
		t.Fatal("unexpected shape")
	}
}

func TestAblationsSmoke(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range AblationOrder {
		tables, err := AblationRegistry[id](cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s: empty output", id)
		}
	}
}
