package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"ldprecover/internal/core"
	"ldprecover/internal/detect"
	"ldprecover/internal/ldp"
	"ldprecover/internal/metrics"
	"ldprecover/internal/rng"
)

// Metrics aggregates one scenario's evaluation outputs (trial means).
// MSE values compare against the dataset's true frequencies (Eq. 36);
// FG values compare target frequencies against the genuine LDP estimate
// (Eq. 37). Fields are only meaningful when their Has* flag is set.
type Metrics struct {
	// MSEBefore is the poisoned estimate's error ("Before recovery").
	MSEBefore float64
	// MSEAfter is LDPRecover's error.
	MSEAfter float64
	// MSEStar is LDPRecover*'s error (partial knowledge).
	MSEStar float64
	// MSEDetect is the Detection baseline's error.
	MSEDetect float64
	// MSEGenuine is the unpoisoned estimate's error (Table I "Before-Rec"
	// at beta=0; diagnostic otherwise).
	MSEGenuine float64

	// FGBefore/FGAfter/FGStar/FGDetect are frequency gains on the true
	// target set (targeted attacks only).
	FGBefore, FGAfter, FGStar, FGDetect float64

	// MSEMalNK and MSEMalPK compare the malicious frequencies estimated
	// by LDPRecover (non-knowledge) and LDPRecover* (partial knowledge)
	// against the true malicious frequencies (Fig. 7).
	MSEMalNK, MSEMalPK float64

	// MSEKMeans and MSEKM are the k-means defense's and LDPRecover-KM's
	// errors (Fig. 9).
	MSEKMeans, MSEKM float64

	HasRecovery, HasStar, HasFG, HasDetect, HasKM, HasMal bool
}

// Run evaluates the scenario and returns trial-mean metrics. Trials are
// independent (each derives its own generator from Seed and the trial
// index) and run in parallel; results accumulate in trial order, so the
// output is bit-identical to a sequential run.
func Run(s Scenario) (*Metrics, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	results := make([]*Metrics, s.Trials)
	errs := make([]error, s.Trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > s.Trials {
		workers = s.Trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range next {
				results[trial], errs[trial] = s.runTrial(trial)
			}
		}()
	}
	for trial := 0; trial < s.Trials; trial++ {
		next <- trial
	}
	close(next)
	wg.Wait()

	var acc Metrics
	for trial := 0; trial < s.Trials; trial++ {
		if errs[trial] != nil {
			return nil, fmt.Errorf("experiment: trial %d: %w", trial, errs[trial])
		}
		accumulate(&acc, results[trial], trial == 0)
	}
	scale := 1 / float64(s.Trials)
	acc.MSEBefore *= scale
	acc.MSEAfter *= scale
	acc.MSEStar *= scale
	acc.MSEDetect *= scale
	acc.MSEGenuine *= scale
	acc.FGBefore *= scale
	acc.FGAfter *= scale
	acc.FGStar *= scale
	acc.FGDetect *= scale
	acc.MSEMalNK *= scale
	acc.MSEMalPK *= scale
	acc.MSEKMeans *= scale
	acc.MSEKM *= scale
	return &acc, nil
}

func accumulate(acc *Metrics, m *Metrics, first bool) {
	acc.MSEBefore += m.MSEBefore
	acc.MSEAfter += m.MSEAfter
	acc.MSEStar += m.MSEStar
	acc.MSEDetect += m.MSEDetect
	acc.MSEGenuine += m.MSEGenuine
	acc.FGBefore += m.FGBefore
	acc.FGAfter += m.FGAfter
	acc.FGStar += m.FGStar
	acc.FGDetect += m.FGDetect
	acc.MSEMalNK += m.MSEMalNK
	acc.MSEMalPK += m.MSEMalPK
	acc.MSEKMeans += m.MSEKMeans
	acc.MSEKM += m.MSEKM
	if first {
		acc.HasRecovery = m.HasRecovery
		acc.HasStar = m.HasStar
		acc.HasFG = m.HasFG
		acc.HasDetect = m.HasDetect
		acc.HasKM = m.HasKM
		acc.HasMal = m.HasMal
	}
}

// runTrial executes one independent trial.
func (s Scenario) runTrial(trial int) (*Metrics, error) {
	r := rng.New(s.Seed + uint64(trial)*0x9e3779b97f4a7c15)
	d := s.Dataset.Domain()
	n := s.Dataset.N()
	trueF := s.Dataset.Frequencies()
	m := maliciousCount(n, s.Beta)

	proto, err := s.Protocol.Build(d, s.Epsilon)
	if err != nil {
		return nil, err
	}
	pr := proto.Params()
	prCore := core.Params{P: pr.P, Q: pr.Q, Domain: d}

	atk, trueTargets, err := s.buildAttack(r, d)
	if err != nil {
		return nil, err
	}

	// --- Simulate genuine and malicious data. ---
	var genCounts, malCounts []int64
	var allReports []ldp.Report
	if s.ReportLevel {
		// PerturbAll rides the arena-backed bulk path and CountSupports
		// the type-specialized batch aggregation, so the exact
		// report-level trial stays within a small constant of the
		// count-level fast path.
		genReports, err := ldp.PerturbAll(proto, r, s.Dataset.Counts)
		if err != nil {
			return nil, err
		}
		genCounts, err = ldp.CountSupports(genReports, d)
		if err != nil {
			return nil, err
		}
		allReports = genReports
		if m > 0 {
			malReports, err := atk.CraftReports(r, proto, m)
			if err != nil {
				return nil, err
			}
			malCounts, err = ldp.CountSupports(malReports, d)
			if err != nil {
				return nil, err
			}
			allReports = append(allReports, malReports...)
		}
	} else {
		genCounts, err = ldp.BatchSimulate(proto, r, s.Dataset.Counts, s.Workers)
		if err != nil {
			return nil, err
		}
		if m > 0 {
			malCounts, err = atk.CraftCounts(r, proto, m)
			if err != nil {
				return nil, err
			}
		}
	}

	genuineEst, err := ldp.Unbias(genCounts, n, pr)
	if err != nil {
		return nil, err
	}
	poisoned := genuineEst
	var trueMalicious []float64
	if m > 0 {
		combined := make([]int64, d)
		for v := range combined {
			combined[v] = genCounts[v] + malCounts[v]
		}
		poisoned, err = ldp.Unbias(combined, n+m, pr)
		if err != nil {
			return nil, err
		}
		trueMalicious, err = ldp.Unbias(malCounts, m, pr)
		if err != nil {
			return nil, err
		}
	}

	out := &Metrics{}
	out.MSEBefore, err = metrics.MSE(poisoned, trueF)
	if err != nil {
		return nil, err
	}
	out.MSEGenuine, err = metrics.MSE(genuineEst, trueF)
	if err != nil {
		return nil, err
	}

	// --- Resolve the partial-knowledge target set. ---
	starTargets := trueTargets
	if starTargets == nil && m > 0 {
		k := s.NumTargets / 2
		if k < 1 {
			k = 1
		}
		starTargets, err = detect.TopIncrease(genuineEst, poisoned, k)
		if err != nil {
			return nil, err
		}
	}

	// --- LDPRecover / LDPRecover*. ---
	if !s.SkipRecovery {
		rec, err := core.Recover(poisoned, prCore, core.Options{Eta: s.Eta})
		if err != nil {
			return nil, err
		}
		out.HasRecovery = true
		out.MSEAfter, err = metrics.MSE(rec.Frequencies, trueF)
		if err != nil {
			return nil, err
		}
		if starTargets != nil {
			recStar, err := core.Recover(poisoned, prCore, core.Options{Eta: s.Eta, Targets: starTargets})
			if err != nil {
				return nil, err
			}
			out.HasStar = true
			out.MSEStar, err = metrics.MSE(recStar.Frequencies, trueF)
			if err != nil {
				return nil, err
			}
			if trueMalicious != nil {
				out.HasMal = true
				out.MSEMalNK, err = metrics.MSE(rec.Malicious, trueMalicious)
				if err != nil {
					return nil, err
				}
				out.MSEMalPK, err = metrics.MSE(recStar.Malicious, trueMalicious)
				if err != nil {
					return nil, err
				}
			}
			if trueTargets != nil {
				out.HasFG = true
				if out.FGBefore, err = metrics.FrequencyGain(poisoned, genuineEst, trueTargets); err != nil {
					return nil, err
				}
				if out.FGAfter, err = metrics.FrequencyGain(rec.Frequencies, genuineEst, trueTargets); err != nil {
					return nil, err
				}
				if out.FGStar, err = metrics.FrequencyGain(recStar.Frequencies, genuineEst, trueTargets); err != nil {
					return nil, err
				}
			}
		}
	}

	// --- Detection baseline. ---
	// allReports is always populated here: RunDetection forces
	// ReportLevel in withDefaults, and validate() backstops the raw
	// combination.
	if s.RunDetection && starTargets != nil {
		det, err := detect.Detection(allReports, starTargets, pr, detect.AnyTarget)
		if err != nil {
			return nil, err
		}
		out.HasDetect = true
		out.MSEDetect, err = metrics.MSE(det.Frequencies, trueF)
		if err != nil {
			return nil, err
		}
		if trueTargets != nil {
			if out.FGDetect, err = metrics.FrequencyGain(det.Frequencies, genuineEst, trueTargets); err != nil {
				return nil, err
			}
		}
	}

	// --- k-means defense and LDPRecover-KM. ---
	if s.RunKMeans && m > 0 {
		combined := make([]int64, d)
		for v := range combined {
			combined[v] = genCounts[v] + malCounts[v]
		}
		kd, err := detect.NewKMeansDefense(s.Xi)
		if err != nil {
			return nil, err
		}
		km, err := kd.RunCounts(r, combined, n+m, pr)
		if err != nil {
			return nil, err
		}
		out.HasKM = true
		out.MSEKMeans, err = metrics.MSE(km.Genuine, trueF)
		if err != nil {
			return nil, err
		}
		recKM, err := detect.RecoverKM(poisoned, km, prCore, s.Eta)
		if err != nil {
			return nil, err
		}
		out.MSEKM, err = metrics.MSE(recKM.Frequencies, trueF)
		if err != nil {
			return nil, err
		}
	}

	return out, nil
}
