// Package experiment wires the substrates together into the paper's
// evaluation (§VI–§VII): scenario configuration, the trial engine, and
// one generator per table and figure. DESIGN.md §4 maps every experiment
// id to its generator; cmd/experiments exposes them on the command line
// and bench_test.go at the module root runs them at benchmark scale.
package experiment

import (
	"fmt"
	"math"

	"ldprecover/internal/attack"
	"ldprecover/internal/dataset"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// ProtocolKind selects an LDP protocol.
type ProtocolKind int

// Protocol kinds.
const (
	GRR ProtocolKind = iota
	OUE
	OLH
)

// AllProtocols lists the three evaluated protocols in paper order.
var AllProtocols = []ProtocolKind{GRR, OUE, OLH}

// String returns the protocol name.
func (k ProtocolKind) String() string {
	switch k {
	case GRR:
		return "GRR"
	case OUE:
		return "OUE"
	case OLH:
		return "OLH"
	default:
		return fmt.Sprintf("protocol(%d)", int(k))
	}
}

// Build constructs the protocol over domain d with privacy budget eps.
func (k ProtocolKind) Build(d int, eps float64) (ldp.Protocol, error) {
	switch k {
	case GRR:
		return ldp.NewGRR(d, eps)
	case OUE:
		return ldp.NewOUE(d, eps)
	case OLH:
		return ldp.NewOLH(d, eps)
	default:
		return nil, fmt.Errorf("experiment: unknown protocol kind %d", int(k))
	}
}

// AttackKind selects a poisoning attack.
type AttackKind int

// Attack kinds.
const (
	// NoAttack runs the pipeline with zero malicious users (Table I).
	NoAttack AttackKind = iota
	// ManipAttack is the untargeted attack of Cheu et al.
	ManipAttack
	// MGAAttack is the targeted attack of Cao et al.
	MGAAttack
	// AAAttack is the paper's adaptive attack with a random distribution.
	AAAttack
	// MGAIPAAttack is MGA pushed through honest perturbation (§VII-B).
	MGAIPAAttack
	// MultiAAAttack is the five-attacker adaptive attack (§VII-C).
	MultiAAAttack
)

// String returns the attack label used in tables.
func (k AttackKind) String() string {
	switch k {
	case NoAttack:
		return "none"
	case ManipAttack:
		return "Manip"
	case MGAAttack:
		return "MGA"
	case AAAttack:
		return "AA"
	case MGAIPAAttack:
		return "MGA-IPA"
	case MultiAAAttack:
		return "MUL-AA"
	default:
		return fmt.Sprintf("attack(%d)", int(k))
	}
}

// Defaults matching §VI-A.
const (
	DefaultEpsilon       = 0.5
	DefaultBeta          = 0.05
	DefaultEta           = 0.2
	DefaultTargets       = 10
	DefaultTrials        = 10
	DefaultManipFraction = 0.5
	DefaultAttackers     = 5
	DefaultXi            = 0.5
)

// Scenario is one experimental cell: a dataset, a protocol, an attack and
// their parameters, evaluated over Trials independent trials.
type Scenario struct {
	// Dataset is the genuine population.
	Dataset *dataset.Dataset
	// Protocol and Epsilon configure the LDP mechanism.
	Protocol ProtocolKind
	Epsilon  float64
	// Attack and its parameters.
	Attack        AttackKind
	Beta          float64 // fraction of malicious users m/(n+m)
	NumTargets    int     // r, for targeted attacks
	ManipFraction float64 // |H|/d for Manip
	NumAttackers  int     // k for MUL-AA
	// Eta is LDPRecover's assumed malicious/genuine ratio.
	Eta float64
	// Trials and Seed control replication.
	Trials int
	Seed   uint64
	// Workers is the number of goroutines the batch perturbation fast
	// path (ldp.BatchSimulate) uses inside one trial. The default 1 keeps
	// results bit-identical to the sequential sampler; raise it when
	// running few trials over paper-scale populations. Trials themselves
	// always run in parallel.
	Workers int
	// ReportLevel materializes per-user reports (exact simulation), which
	// the Detection baseline requires. Count-level simulation is used
	// otherwise.
	ReportLevel bool
	// RunDetection includes the Detection baseline. Detection consumes
	// individual reports, so it requires ReportLevel: withDefaults turns
	// it on automatically (the count-level path materializes no reports
	// for Detection to filter), and validate() rejects the raw
	// combination as a backstop should that defaulting ever change.
	RunDetection bool
	// RunKMeans includes the k-means defense and LDPRecover-KM with
	// subset sample rate Xi (count-level).
	RunKMeans bool
	Xi        float64
	// SkipRecovery skips LDPRecover/LDPRecover* (Fig. 8 compares attacks
	// only).
	SkipRecovery bool
}

// withDefaults fills zero fields with the paper's defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Epsilon == 0 {
		s.Epsilon = DefaultEpsilon
	}
	if s.Beta == 0 && s.Attack != NoAttack {
		s.Beta = DefaultBeta
	}
	if s.Eta == 0 {
		s.Eta = DefaultEta
	}
	if s.NumTargets == 0 {
		s.NumTargets = DefaultTargets
	}
	if s.ManipFraction == 0 {
		s.ManipFraction = DefaultManipFraction
	}
	if s.NumAttackers == 0 {
		s.NumAttackers = DefaultAttackers
	}
	if s.Trials == 0 {
		s.Trials = DefaultTrials
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Xi == 0 {
		s.Xi = DefaultXi
	}
	if s.RunDetection {
		s.ReportLevel = true
	}
	return s
}

// validate rejects malformed scenarios.
func (s Scenario) validate() error {
	if s.Dataset == nil {
		return fmt.Errorf("experiment: scenario has no dataset")
	}
	if s.Beta < 0 || s.Beta >= 1 || math.IsNaN(s.Beta) {
		return fmt.Errorf("experiment: beta %v outside [0,1)", s.Beta)
	}
	if s.Attack == NoAttack && s.Beta != 0 {
		return fmt.Errorf("experiment: NoAttack requires beta=0, got %v", s.Beta)
	}
	if s.Eta < 0 {
		return fmt.Errorf("experiment: negative eta %v", s.Eta)
	}
	if s.Trials < 1 {
		return fmt.Errorf("experiment: trials %d < 1", s.Trials)
	}
	// Unreachable through Run (withDefaults force-enables ReportLevel
	// first): a backstop pinning the invariant that Detection never
	// silently runs over the report-free count-level path.
	if s.RunDetection && !s.ReportLevel {
		return fmt.Errorf("experiment: RunDetection requires ReportLevel " +
			"(the count-level fast path materializes no reports for Detection to filter)")
	}
	return nil
}

// maliciousCount converts beta into m given n genuine users:
// beta = m/(n+m) => m = n*beta/(1-beta).
func maliciousCount(n int64, beta float64) int64 {
	if beta <= 0 {
		return 0
	}
	return int64(math.Round(float64(n) * beta / (1 - beta)))
}

// buildAttack constructs the scenario's attack and returns it with the
// attacker's true target set (nil for untargeted attacks).
func (s Scenario) buildAttack(r *rng.Rand, d int) (attack.Attack, []int, error) {
	switch s.Attack {
	case NoAttack:
		return nil, nil, nil
	case ManipAttack:
		a, err := attack.NewManip(s.ManipFraction, r.Uint64())
		return a, nil, err
	case MGAAttack:
		targets, err := attack.RandomTargets(r, d, s.NumTargets)
		if err != nil {
			return nil, nil, err
		}
		a, err := attack.NewMGA(targets)
		return a, targets, err
	case AAAttack:
		a, err := attack.NewRandomAdaptive(r, d)
		return a, nil, err
	case MGAIPAAttack:
		targets, err := attack.RandomTargets(r, d, s.NumTargets)
		if err != nil {
			return nil, nil, err
		}
		a, err := attack.NewMGAIPA(targets, d)
		return a, targets, err
	case MultiAAAttack:
		a, err := attack.NewMultiAdaptive(r, s.NumAttackers, d)
		return a, nil, err
	default:
		return nil, nil, fmt.Errorf("experiment: unknown attack kind %d", int(s.Attack))
	}
}
