package experiment

import (
	"fmt"
	"math"

	"ldprecover/internal/attack"
	"ldprecover/internal/core"
	"ldprecover/internal/dataset"
	"ldprecover/internal/detect"
	"ldprecover/internal/ldp"
	"ldprecover/internal/metrics"
	"ldprecover/internal/rng"
)

// This file implements the ablation studies DESIGN.md §4 calls out beyond
// the paper's own experiments: the refiner choice, simulation fidelity,
// and the detection rule.

// AblationRefiner compares Algorithm 1's iterative KKT refinement against
// the exact sort-based simplex projection inside full recovery runs. The
// two must agree to numerical precision (the CI problem has a unique
// optimum); the table reports recovered MSE under both and the maximum
// absolute per-item deviation observed.
func AblationRefiner(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: refiner choice (AA, IPUMS)",
		Header: []string{"protocol", "mse-kkt", "mse-projection", "max-abs-diff"},
	}
	for _, proto := range AllProtocols {
		p, err := proto.Build(ds.Domain(), DefaultEpsilon)
		if err != nil {
			return nil, err
		}
		pr := p.Params()
		prCore := core.Params{P: pr.P, Q: pr.Q, Domain: pr.Domain}
		var mseKKT, mseProj, maxDiff float64
		for trial := 0; trial < cfg.Trials; trial++ {
			r := rng.New(cfg.Seed + uint64(trial)*7919)
			poisoned, err := poisonedAA(r, ds, p, cfg.Workers)
			if err != nil {
				return nil, err
			}
			recK, err := core.Recover(poisoned, prCore, core.Options{})
			if err != nil {
				return nil, err
			}
			recP, err := core.Recover(poisoned, prCore, core.Options{Refiner: core.ProjectSimplex})
			if err != nil {
				return nil, err
			}
			trueF := ds.Frequencies()
			mk, err := metrics.MSE(recK.Frequencies, trueF)
			if err != nil {
				return nil, err
			}
			mp, err := metrics.MSE(recP.Frequencies, trueF)
			if err != nil {
				return nil, err
			}
			mseKKT += mk
			mseProj += mp
			for v := range recK.Frequencies {
				if d := math.Abs(recK.Frequencies[v] - recP.Frequencies[v]); d > maxDiff {
					maxDiff = d
				}
			}
		}
		scale := 1 / float64(cfg.Trials)
		t.AddRow(proto.String(), sci(mseKKT*scale), sci(mseProj*scale), sci(maxDiff))
	}
	return []*Table{t}, nil
}

// AblationSimFidelity compares count-level (fast) and report-level
// (exact) simulation through the full pipeline: poisoned and recovered
// MSE must agree within trial noise.
func AblationSimFidelity(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Ablation: simulation fidelity (MGA, IPUMS)",
		Header: []string{"protocol",
			"before-fast", "before-exact", "rec-fast", "rec-exact"},
	}
	for _, proto := range AllProtocols {
		var vals [4]float64
		for i, reportLevel := range []bool{false, true} {
			m, err := Run(Scenario{
				Dataset:     ds,
				Protocol:    proto,
				Attack:      MGAAttack,
				Trials:      cfg.Trials,
				Seed:        cfg.Seed,
				Workers:     cfg.Workers,
				ReportLevel: reportLevel,
			})
			if err != nil {
				return nil, err
			}
			vals[i] = m.MSEBefore
			vals[i+2] = m.MSEAfter
		}
		t.AddRow(proto.String(), sci(vals[0]), sci(vals[1]), sci(vals[2]), sci(vals[3]))
	}
	return []*Table{t}, nil
}

// AblationDetectionRule compares the paper's any-target Detection rule
// against the strict all-targets rule under MGA.
func AblationDetectionRule(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Ablation: detection rule (MGA, IPUMS)",
		Header: []string{"protocol",
			"mse-any", "mse-all", "removed-any", "removed-all"},
	}
	trueF := ds.Frequencies()
	for _, proto := range AllProtocols {
		p, err := proto.Build(ds.Domain(), DefaultEpsilon)
		if err != nil {
			return nil, err
		}
		var mseAny, mseAll, remAny, remAll float64
		for trial := 0; trial < cfg.Trials; trial++ {
			r := rng.New(cfg.Seed + uint64(trial)*104729)
			reports, targets, err := poisonedMGAReports(r, ds, p)
			if err != nil {
				return nil, err
			}
			for _, rule := range []detect.Rule{detect.AnyTarget, detect.AllTargets} {
				res, err := detect.Detection(reports, targets, p.Params(), rule)
				if err != nil {
					return nil, err
				}
				mse, err := metrics.MSE(res.Frequencies, trueF)
				if err != nil {
					return nil, err
				}
				if rule == detect.AnyTarget {
					mseAny += mse
					remAny += float64(res.Removed)
				} else {
					mseAll += mse
					remAll += float64(res.Removed)
				}
			}
		}
		scale := 1 / float64(cfg.Trials)
		t.AddRow(proto.String(),
			sci(mseAny*scale), sci(mseAll*scale),
			fmt.Sprintf("%.0f", remAny*scale), fmt.Sprintf("%.0f", remAll*scale))
	}
	return []*Table{t}, nil
}

// poisonedAA simulates one AA-poisoned estimate at default parameters
// (count level).
func poisonedAA(r *rng.Rand, ds *dataset.Dataset, p ldp.Protocol, workers int) ([]float64, error) {
	n := ds.N()
	m := maliciousCount(n, DefaultBeta)
	atk, err := attack.NewRandomAdaptive(r, ds.Domain())
	if err != nil {
		return nil, err
	}
	counts, err := ldp.BatchSimulate(p, r, ds.Counts, workers)
	if err != nil {
		return nil, err
	}
	mal, err := atk.CraftCounts(r, p, m)
	if err != nil {
		return nil, err
	}
	for v := range counts {
		counts[v] += mal[v]
	}
	return ldp.Unbias(counts, n+m, p.Params())
}

// poisonedMGAReports materializes an MGA-poisoned report set at default
// parameters.
func poisonedMGAReports(r *rng.Rand, ds *dataset.Dataset, p ldp.Protocol) ([]ldp.Report, []int, error) {
	targets, err := attack.RandomTargets(r, ds.Domain(), DefaultTargets)
	if err != nil {
		return nil, nil, err
	}
	mga, err := attack.NewMGA(targets)
	if err != nil {
		return nil, nil, err
	}
	genuine, err := ldp.PerturbAll(p, r, ds.Counts)
	if err != nil {
		return nil, nil, err
	}
	m := maliciousCount(ds.N(), DefaultBeta)
	malicious, err := mga.CraftReports(r, p, m)
	if err != nil {
		return nil, nil, err
	}
	return append(genuine, malicious...), targets, nil
}

// AblationRegistry maps ablation ids to generators.
var AblationRegistry = map[string]func(Config) ([]*Table, error){
	"refiner":        AblationRefiner,
	"sim-fidelity":   AblationSimFidelity,
	"detection-rule": AblationDetectionRule,
}

// AblationOrder lists ablation ids in a stable order.
var AblationOrder = []string{"refiner", "sim-fidelity", "detection-rule"}
