package experiment

import (
	"fmt"
	"math"

	"ldprecover/internal/core"
	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

// TheoryValidation empirically validates the paper's analytical results
// on each protocol: Lemma 2's estimator moments (mean and variance of
// f̃_X̃(v)), Theorem 2's unbiasedness of the genuine frequency estimator,
// and Theorems 4–5's Berry–Esseen bounds (the measured sup-CDF distance
// to the normal approximation must fall below the bound).
func TheoryValidation(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	n := ds.N()
	const f = 0.1 // frequency of the probed item
	const trials = 2000

	t := &Table{
		Title: fmt.Sprintf("Theory validation (n=%d, f=%g, %d trials)", n, f, trials),
		Header: []string{"protocol",
			"mean-pred", "mean-emp",
			"var-pred", "var-emp",
			"be-bound", "ks-emp", "ks<=bound"},
	}
	for _, proto := range AllProtocols {
		p, err := proto.Build(ds.Domain(), DefaultEpsilon)
		if err != nil {
			return nil, err
		}
		lpr := p.Params()
		pr := core.Params{P: lpr.P, Q: lpr.Q, Domain: lpr.Domain}
		pred, err := core.GenuineDistribution(f, pr, n)
		if err != nil {
			return nil, err
		}
		bound, err := core.GenuineApproxError(f, pr, n)
		if err != nil {
			return nil, err
		}

		r := rng.New(cfg.Seed + uint64(proto)*65537)
		sample := make([]float64, trials)
		nv := int64(f * float64(n))
		for i := range sample {
			// Per-item marginal of any pure protocol: the item is
			// supported by its holders w.p. p and by others w.p. q.
			c := r.Binomial(nv, lpr.P) + r.Binomial(n-nv, lpr.Q)
			sample[i] = (float64(c) - float64(n)*lpr.Q) / (float64(n) * (lpr.P - lpr.Q))
		}
		empMean := stats.Mean(sample)
		empVar := stats.SampleVariance(sample)
		ks, err := stats.KSStatistic(sample, func(x float64) float64 {
			return stats.NormalCDF(x, pred.Mu, math.Sqrt(pred.Sigma2))
		})
		if err != nil {
			return nil, err
		}
		// The empirical KS also carries sampling error ~1/sqrt(trials).
		slack := 2 / math.Sqrt(float64(trials))
		ok := "yes"
		if ks > bound+slack {
			ok = "NO"
		}
		t.AddRow(proto.String(),
			fmt.Sprintf("%.6f", pred.Mu), fmt.Sprintf("%.6f", empMean),
			sci(pred.Sigma2), sci(empVar),
			sci(bound), sci(ks), ok)
	}
	return []*Table{t}, nil
}

func init() {
	AblationRegistry["theory"] = TheoryValidation
	AblationOrder = append(AblationOrder, "theory")
}
