package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// gridCell is one scenario cell of a figure/table grid: the scenario to
// evaluate, a tag for error context, and the slot its metrics land in.
type gridCell struct {
	tag string
	scn Scenario
	m   *Metrics
}

// runGrid evaluates every cell, fanning the independent cells out across
// workers. Figure generators used to sweep their grids sequentially, so
// a bench-scale config (2 trials per cell) starved Run's trial-level
// parallelism; cell-level fan-out keeps all cores busy regardless of the
// per-cell trial count.
//
// The cell worker count shares the CPU budget with the per-cell
// concurrency — Run's trial workers times the trial's BatchSimulate
// workers — so total goroutine count (and, at report-level paper scale,
// total resident report arenas) stays ~GOMAXPROCS-bounded instead of
// multiplying the pools.
//
// Parallelism cannot change any number: each cell derives all of its
// randomness from its own scenario seed, and results land in cell order,
// so the output is bit-identical to the sequential sweep. The first
// cell (in grid order) that fails determines the returned error, and a
// failure stops further cells from being dispatched.
func runGrid(cells []*gridCell) error {
	procs := runtime.GOMAXPROCS(0)
	perCell := DefaultTrials
	if len(cells) > 0 {
		if t := cells[0].scn.Trials; t > 0 {
			perCell = t
		}
		if w := cells[0].scn.Workers; w > 1 {
			perCell *= w
		}
	}
	workers := (procs + perCell - 1) / perCell
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for _, c := range cells {
			m, err := Run(c.scn)
			if err != nil {
				return fmt.Errorf("%s: %w", c.tag, err)
			}
			c.m = m
		}
		return nil
	}
	errs := make([]error, len(cells))
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue // fail fast: drain without running
				}
				m, err := Run(cells[i].scn)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", cells[i].tag, err)
					failed.Store(true)
					continue
				}
				cells[i].m = m
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
