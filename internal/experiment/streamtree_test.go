package experiment

import (
	"reflect"
	"testing"

	"ldprecover/internal/dataset"
)

// TestRunStreamTreeEquivalence pins the experiment-layer half of the
// aggregation-tree guarantee: the same streaming scenario run through
// two-level trees of different shapes — balanced, skewed, single-child
// mergers — produces per-epoch metrics bit-identical to the single-node
// pipeline. Interior mergers add a level of exact integer folding and
// nothing else.
func TestRunStreamTreeEquivalence(t *testing.T) {
	ds, err := dataset.Zipf("tree-eq", 48, 30_000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	base := StreamScenario{
		Dataset:     ds,
		Protocol:    OUE,
		Epsilon:     1,
		NumTargets:  2,
		Beta:        0.08,
		Epochs:      10,
		AttackStart: 5,
		StableAfter: 2,
		MinHistory:  2,
		Seed:        99,
	}
	want, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	if want.StarEngagedAt < 0 {
		t.Fatal("scenario never engaged LDPRecover*; the equivalence check is vacuous")
	}
	for _, tree := range [][]int{{3, 3}, {1, 4, 2}, {1}} {
		s := base
		s.Tree = tree
		got, err := RunStream(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tree %v stream diverged from single-node\ngot  %+v\nwant %+v", tree, got, want)
		}
	}
}

// TestRunStreamTreeValidation: the tree replaces the flat cluster and
// must be well-formed.
func TestRunStreamTreeValidation(t *testing.T) {
	ds, err := dataset.Zipf("tree-val", 16, 1_000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	base := StreamScenario{Dataset: ds, Protocol: OUE, Epochs: 2, AttackStart: 2}
	for name, mut := range map[string]func(*StreamScenario){
		"tree-with-frontends": func(s *StreamScenario) { s.Tree = []int{2}; s.Frontends = 3 },
		"tree-with-presum":    func(s *StreamScenario) { s.Tree = []int{2}; s.Presum = 2 },
		"tree-empty-merger":   func(s *StreamScenario) { s.Tree = []int{2, 0} },
	} {
		t.Run(name, func(t *testing.T) {
			s := base
			mut(&s)
			if _, err := RunStream(s); err == nil {
				t.Fatalf("malformed tree scenario accepted: %+v", s.Tree)
			}
		})
	}
}
