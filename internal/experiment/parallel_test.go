package experiment

import (
	"strings"
	"testing"
)

// TestRunGridMatchesSequential: cell-level parallelism must not change a
// single digit of any figure — every cell is seeded independently, so
// the grid's output is schedule-invariant.
func TestRunGridMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	mk := func(seed uint64, proto ProtocolKind) Scenario {
		return Scenario{
			Dataset:  ds,
			Protocol: proto,
			Attack:   MGAAttack,
			Trials:   2,
			Seed:     seed,
		}
	}
	var cells []*gridCell
	for i := 0; i < 6; i++ {
		cells = append(cells, &gridCell{
			tag: "grid-test",
			scn: mk(uint64(i+1), AllProtocols[i%len(AllProtocols)]),
		})
	}
	if err := runGrid(cells); err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		want, err := Run(c.scn)
		if err != nil {
			t.Fatal(err)
		}
		if c.m == nil {
			t.Fatalf("cell %d has no metrics", i)
		}
		if c.m.MSEBefore != want.MSEBefore || c.m.MSEAfter != want.MSEAfter ||
			c.m.FGBefore != want.FGBefore {
			t.Fatalf("cell %d diverged from sequential Run: %+v vs %+v", i, c.m, want)
		}
	}
}

// TestRunGridPropagatesError: a failing cell surfaces with its tag.
func TestRunGridPropagatesError(t *testing.T) {
	cells := []*gridCell{
		{tag: "good", scn: Scenario{Dataset: testDataset(t), Protocol: GRR, Trials: 1, Seed: 1}},
		{tag: "bad-cell", scn: Scenario{ /* no dataset */ }},
	}
	err := runGrid(cells)
	if err == nil {
		t.Fatal("invalid cell did not fail the grid")
	}
	if !strings.Contains(err.Error(), "bad-cell") {
		t.Fatalf("error lost its cell tag: %v", err)
	}
}

// TestValidateRejectsDetectionWithoutReports pins the footgun fix: the
// count-level path materializes no reports, so Detection over it must be
// rejected, not silently fed nothing.
func TestValidateRejectsDetectionWithoutReports(t *testing.T) {
	s := Scenario{
		Dataset:      testDataset(t),
		Attack:       MGAAttack,
		RunDetection: true,
		Trials:       1,
	}
	// Direct validation (as a runTrial caller would hit it): the
	// combination must be rejected before any simulation runs.
	s = s.withDefaults()
	s.ReportLevel = false
	if err := s.validate(); err == nil {
		t.Fatal("RunDetection without ReportLevel validated")
	}
	// The public path auto-forces report-level simulation instead.
	forced := Scenario{
		Dataset:      testDataset(t),
		Attack:       MGAAttack,
		RunDetection: true,
		Trials:       1,
		Seed:         3,
	}
	m, err := Run(forced)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasDetect {
		t.Fatal("detection metrics missing from auto-forced report-level run")
	}
}
