package experiment

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"ldprecover/internal/attack"
	"ldprecover/internal/dataset"
	"ldprecover/internal/ldp"
	"ldprecover/internal/metrics"
	"ldprecover/internal/rng"
	"ldprecover/internal/stream"
)

// StreamScenario drives the epoch-streamed pipeline under a mid-stream
// attack: the collector runs clean for AttackStart epochs, then an
// attacker ramps its malicious population linearly to Beta over
// RampEpochs and holds it. Each epoch the whole dataset population
// reports once (count-level simulation — periodic collection, the
// setting the paper's historical target identification assumes), the
// epoch seals, and per-epoch window metrics record how recovery tracks
// the attack — including the epoch at which cross-epoch outlier
// detection stabilizes and LDPRecover* engages on its own.
type StreamScenario struct {
	// Dataset is the genuine population reporting each epoch.
	Dataset *dataset.Dataset
	// Protocol and Epsilon configure the LDP mechanism.
	Protocol ProtocolKind
	Epsilon  float64
	// NumTargets is r for the MGA attacker (the streaming scenario is
	// about targeted attacks; untargeted ramps have no target set to
	// identify).
	NumTargets int
	// Beta is the steady-state malicious fraction m/(n+m).
	Beta float64
	// Epochs is the stream length; AttackStart the first attacked epoch
	// (zero defaults to Epochs/2 — the scenario is about a mid-stream
	// ramp, and an attack in epoch 0 would leave detection no clean
	// baseline; AttackStart >= Epochs runs the whole stream clean);
	// RampEpochs how many epochs the ramp to full Beta takes.
	Epochs      int
	AttackStart int
	RampEpochs  int
	// Window and History configure the epoch manager (stream.Config
	// semantics); StableAfter and MinHistory tune target stabilization.
	Window      int
	History     int
	StableAfter int
	MinHistory  int
	// Eta is LDPRecover's assumed malicious/genuine ratio.
	Eta float64
	// Frontends splits each epoch's population across this many
	// frontend ingest nodes whose sealed tallies merge at a root
	// through the epoch barrier (the scale-out collection tier,
	// DESIGN.md §7); <= 1 runs the single-node pipeline. The per-epoch
	// metrics are bit-identical either way — tally merging is exact —
	// which TestRunStreamClusterEquivalence pins.
	Frontends int
	// Churn schedules membership changes for the cluster tier: each
	// event joins or retires one frontend at its epoch boundary, and
	// the epoch's population is partitioned across whichever nodes are
	// members when it is collected. Because the union aggregate is
	// simulated before partitioning, churn cannot change the merged
	// bits — TestRunStreamChurnEquivalence pins that a churning
	// cluster matches the single-node run exactly. Requires
	// Frontends > 1.
	Churn []ChurnEvent
	// Tree arranges the cluster as a two-level aggregation tree
	// (DESIGN.md §9): entry i is the number of frontends under interior
	// merger m-i, and the root merges the mergers' merged tallies
	// instead of the frontends' directly. Each merger runs its own
	// epoch manager (detection disabled — it sees only its subtree) and
	// propagates every sealed epoch upward as one tally, so the root's
	// per-epoch metrics stay bit-identical to the flat and single-node
	// runs — TestRunStreamTreeEquivalence pins it. Empty runs flat;
	// mutually exclusive with Frontends, Churn, and Presum.
	Tree []int
	// Presum splits each epoch's population across this many edge
	// collectors (the tally-first ingest SDK, DESIGN.md §8): every
	// partition folds locally through a Collector, flushes a wire-coded
	// partial tally hinted at the current epoch, and the manager ingests
	// the decoded partials instead of the union aggregate. Counts are
	// additive, so the per-epoch metrics are bit-identical to the
	// count-level run — TestRunStreamPresumEquivalence pins it. <= 1
	// ingests the union directly; requires Frontends <= 1 (partials
	// target a collecting node, not the tally-merging root).
	Presum int
	// Seed drives the whole stream deterministically.
	Seed uint64
}

// ChurnEvent is one scheduled membership change: at the start of epoch
// Epoch the named frontend joins the cluster (or, with Leave set,
// stops contributing from that epoch on). Joins of standing members
// and repeated leaves are idempotent, mirroring the announcement
// semantics of the serving tier.
type ChurnEvent struct {
	Epoch int
	Node  string
	Leave bool
}

// withDefaults fills zero fields with the paper's defaults and a
// 20-epoch stream attacked from the middle.
func (s StreamScenario) withDefaults() StreamScenario {
	if s.Epsilon == 0 {
		s.Epsilon = DefaultEpsilon
	}
	if s.Beta == 0 {
		s.Beta = DefaultBeta
	}
	if s.NumTargets == 0 {
		s.NumTargets = DefaultTargets
	}
	if s.Eta == 0 {
		s.Eta = DefaultEta
	}
	if s.Epochs == 0 {
		s.Epochs = 20
	}
	if s.AttackStart == 0 {
		s.AttackStart = s.Epochs / 2
	}
	if s.RampEpochs == 0 {
		s.RampEpochs = 3
	}
	if s.Window == 0 {
		s.Window = 1
	}
	if s.History == 0 {
		s.History = s.Epochs
	}
	return s
}

// validate rejects malformed scenarios.
func (s StreamScenario) validate() error {
	if s.Dataset == nil {
		return fmt.Errorf("experiment: stream scenario has no dataset")
	}
	if s.Beta < 0 || s.Beta >= 1 || math.IsNaN(s.Beta) {
		return fmt.Errorf("experiment: beta %v outside [0,1)", s.Beta)
	}
	if s.Epochs < 1 {
		return fmt.Errorf("experiment: %d epochs", s.Epochs)
	}
	if s.AttackStart < 0 || s.AttackStart > s.Epochs {
		return fmt.Errorf("experiment: attack start %d outside the %d-epoch stream",
			s.AttackStart, s.Epochs)
	}
	if s.RampEpochs < 1 {
		return fmt.Errorf("experiment: ramp of %d epochs", s.RampEpochs)
	}
	if s.Frontends < 0 || s.Frontends > 1<<10 {
		return fmt.Errorf("experiment: %d frontends outside [0, %d]", s.Frontends, 1<<10)
	}
	if len(s.Churn) > 0 && s.Frontends <= 1 {
		return fmt.Errorf("experiment: churn schedule needs a cluster (Frontends > 1)")
	}
	if s.Presum < 0 || s.Presum > 1<<10 {
		return fmt.Errorf("experiment: %d edge collectors outside [0, %d]", s.Presum, 1<<10)
	}
	if s.Presum > 1 && s.Frontends > 1 {
		return fmt.Errorf("experiment: Presum partials feed a collecting node, not the cluster root; use one or the other")
	}
	if len(s.Tree) > 0 {
		if s.Frontends > 1 || len(s.Churn) > 0 || s.Presum > 1 {
			return fmt.Errorf("experiment: Tree replaces the flat cluster; it excludes Frontends, Churn, and Presum")
		}
		if len(s.Tree) > 1<<10 {
			return fmt.Errorf("experiment: %d tree mergers outside [1, %d]", len(s.Tree), 1<<10)
		}
		for i, k := range s.Tree {
			if k < 1 || k > 1<<10 {
				return fmt.Errorf("experiment: tree merger %d has %d frontends outside [1, %d]", i, k, 1<<10)
			}
		}
	}
	for _, ev := range s.Churn {
		if ev.Node == "" {
			return fmt.Errorf("experiment: churn event at epoch %d has no node id", ev.Epoch)
		}
		if ev.Epoch < 0 || ev.Epoch >= s.Epochs {
			return fmt.Errorf("experiment: churn event for %q at epoch %d outside the %d-epoch stream",
				ev.Node, ev.Epoch, s.Epochs)
		}
	}
	return nil
}

// StreamPoint is one epoch's metrics: window estimates against the true
// frequencies, and the frequency gain the attacker retains on its
// targets before and after recovery.
type StreamPoint struct {
	// Epoch is the sealed epoch's sequence number.
	Epoch int
	// Beta is the realized malicious fraction ingested this epoch.
	Beta float64
	// MSEBefore/MSEAfter compare the window's poisoned and recovered
	// estimates against the dataset's true frequencies (Eq. 36).
	MSEBefore, MSEAfter float64
	// FGBefore/FGAfter are the attacker's frequency gains on the true
	// target set (Eq. 37) against the clean window estimate of epoch 0.
	FGBefore, FGAfter float64
	// PartialKnowledge records whether LDPRecover* ran this epoch.
	PartialKnowledge bool
	// Targets is the stable target set recovery used (nil before the
	// upgrade).
	Targets []int
}

// StreamMetrics is the streaming scenario's output time series.
type StreamMetrics struct {
	// Points has one entry per epoch, in seal order.
	Points []StreamPoint
	// TrueTargets is the attacker's actual target set.
	TrueTargets []int
	// StarEngagedAt is the first epoch LDPRecover* ran (-1: never).
	StarEngagedAt int
	// TargetsExact records whether the stable target set equalled the
	// attacker's true targets at the engagement epoch.
	TargetsExact bool
}

// RunStream executes the scenario and returns the per-epoch series.
func RunStream(s StreamScenario) (*StreamMetrics, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	d := s.Dataset.Domain()
	n := s.Dataset.N()
	trueF := s.Dataset.Frequencies()

	proto, err := s.Protocol.Build(d, s.Epsilon)
	if err != nil {
		return nil, err
	}
	r := rng.New(s.Seed + 0x51ab)
	targets, err := attack.RandomTargets(r, d, s.NumTargets)
	if err != nil {
		return nil, err
	}
	mga, err := attack.NewMGA(targets)
	if err != nil {
		return nil, err
	}
	mgr, err := stream.NewEpochManager(stream.Config{
		Params:      proto.Params(),
		Window:      s.Window,
		History:     s.History,
		Eta:         s.Eta,
		TargetK:     s.NumTargets,
		StableAfter: s.StableAfter,
		MinHistory:  s.MinHistory,
	})
	if err != nil {
		return nil, err
	}

	// Cluster mode: a merger in front of the manager, fed one tally per
	// frontend per epoch. The epoch's aggregate is simulated once and
	// partitioned afterwards, exactly as disjoint user populations would
	// partition it, so single-node and cluster runs consume the same
	// randomness and must produce the same bits.
	var merger *stream.SealedMerger
	var feNodes []string
	if s.Frontends > 1 {
		feNodes = make([]string, s.Frontends)
		for i := range feNodes {
			feNodes[i] = fmt.Sprintf("fe-%d", i)
		}
		if merger, err = stream.NewSealedMerger(mgr, feNodes); err != nil {
			return nil, err
		}
	}

	// Tree mode: each interior merger folds its subtree's tallies into
	// its own manager (detection disabled, as on a -role=merger server —
	// a subtree-local z-score would drift from the merged view) and the
	// sealed result propagates upward as one tally, mirroring the
	// serving tier's onSealed push.
	type treeMerger struct {
		id     string
		mgr    *stream.EpochManager
		sm     *stream.SealedMerger
		leaves []string
	}
	var tree []treeMerger
	if len(s.Tree) > 0 {
		mergerIDs := make([]string, len(s.Tree))
		tree = make([]treeMerger, len(s.Tree))
		leaf := 0
		for i, k := range s.Tree {
			mergerIDs[i] = fmt.Sprintf("m-%d", i)
			subMgr, err := stream.NewEpochManager(stream.Config{
				Params:  proto.Params(),
				Window:  1,
				History: 1,
				Eta:     s.Eta,
				TargetK: -1,
			})
			if err != nil {
				return nil, err
			}
			leaves := make([]string, k)
			for j := range leaves {
				leaves[j] = fmt.Sprintf("fe-%d", leaf)
				leaf++
			}
			subSM, err := stream.NewSealedMerger(subMgr, leaves)
			if err != nil {
				return nil, err
			}
			tree[i] = treeMerger{id: mergerIDs[i], mgr: subMgr, sm: subSM, leaves: leaves}
		}
		if merger, err = stream.NewSealedMerger(mgr, mergerIDs); err != nil {
			return nil, err
		}
	}

	// The churn schedule drains in epoch order; events sharing an epoch
	// apply in the order given.
	churn := append([]ChurnEvent(nil), s.Churn...)
	sort.SliceStable(churn, func(i, j int) bool { return churn[i].Epoch < churn[j].Epoch })

	out := &StreamMetrics{TrueTargets: targets, StarEngagedAt: -1}
	var cleanEst []float64
	for e := 0; e < s.Epochs; e++ {
		// Membership changes take effect at the boundary, before the
		// epoch's population is partitioned: a joiner contributes from
		// its effective epoch, a leaver contributes nothing from its.
		for len(churn) > 0 && churn[0].Epoch == e {
			ev := churn[0]
			churn = churn[1:]
			if ev.Leave {
				if _, _, err := merger.Leave(ev.Node, e); err != nil {
					return nil, err
				}
				feNodes = slices.DeleteFunc(feNodes, func(n string) bool { return n == ev.Node })
			} else {
				effective, err := merger.Join(ev.Node)
				if err != nil {
					return nil, err
				}
				if effective != e {
					// Between epochs the barrier is empty, so a boundary
					// join is always immediate; anything else means the
					// simulation lost sync with the merger.
					return nil, fmt.Errorf("experiment: join of %q at epoch %d became effective at %d",
						ev.Node, e, effective)
				}
				if !slices.Contains(feNodes, ev.Node) {
					feNodes = append(feNodes, ev.Node)
				}
			}
		}
		union, err := ldp.BatchSimulate(proto, r, s.Dataset.Counts, 1)
		if err != nil {
			return nil, err
		}
		total := n
		m := maliciousCount(n, s.rampBeta(e))
		if m > 0 {
			mal, err := mga.CraftCounts(r, proto, m)
			if err != nil {
				return nil, err
			}
			for v, c := range mal {
				union[v] += c
			}
			total += m
		}
		var est *stream.WindowEstimate
		if merger == nil {
			if s.Presum > 1 {
				// Tally-first ingest: each partition pre-aggregates at an
				// edge Collector and travels as a wire-coded partial tally
				// hinted at the current epoch — the full SDK → codec →
				// AddPartial path, not a shortcut around it.
				parts, totals := splitCounts(union, total, s.Presum)
				for j := range parts {
					col, err := ldp.NewCollector(fmt.Sprintf("edge-%d", j), d)
					if err != nil {
						return nil, err
					}
					if err := col.AddCounts(parts[j], totals[j]); err != nil {
						return nil, err
					}
					frame, err := col.Flush(e)
					if err != nil {
						return nil, err
					}
					p, err := ldp.UnmarshalPartial(frame)
					if err != nil {
						return nil, err
					}
					if err := mgr.AddPartial(p); err != nil {
						return nil, err
					}
				}
			} else if err := mgr.AddCounts(union, total); err != nil {
				return nil, err
			}
			if est, err = mgr.Seal(); err != nil {
				return nil, err
			}
		} else if len(tree) > 0 {
			// Two-level tree: the leaves' tallies fold at their merger,
			// each merger's sealed epoch propagates upward as one tally,
			// and the root's barrier completes over the mergers.
			nLeaf := 0
			for _, tm := range tree {
				nLeaf += len(tm.leaves)
			}
			parts, totals := splitCounts(union, total, nLeaf)
			leaf := 0
			for _, tm := range tree {
				for _, node := range tm.leaves {
					if _, err := tm.sm.MergeSealed(&ldp.Tally{
						NodeID: node, Epoch: e, Counts: parts[leaf], Total: totals[leaf],
					}); err != nil {
						return nil, err
					}
					leaf++
				}
				subEst, subInfo, err := tm.sm.TrySeal()
				if err != nil {
					return nil, err
				}
				if subEst == nil || len(subInfo.Missing) != 0 {
					return nil, fmt.Errorf("experiment: epoch %d merger %s barrier incomplete (%+v)", e, tm.id, subInfo)
				}
				ring := tm.mgr.Epochs()
				sealed := ring[len(ring)-1]
				if _, err := merger.MergeSealed(&ldp.Tally{
					NodeID: tm.id, Epoch: e, Counts: sealed.Counts, Total: sealed.Total,
				}); err != nil {
					return nil, err
				}
			}
			var info *stream.MergedEpoch
			if est, info, err = merger.TrySeal(); err != nil {
				return nil, err
			}
			if est == nil || len(info.Missing) != 0 {
				return nil, fmt.Errorf("experiment: epoch %d root barrier incomplete (%+v)", e, info)
			}
		} else {
			parts, totals := splitCounts(union, total, len(feNodes))
			for j, node := range feNodes {
				if _, err := merger.MergeSealed(&ldp.Tally{
					NodeID: node, Epoch: e, Counts: parts[j], Total: totals[j],
				}); err != nil {
					return nil, err
				}
			}
			var info *stream.MergedEpoch
			if est, info, err = merger.TrySeal(); err != nil {
				return nil, err
			}
			if est == nil || len(info.Missing) != 0 {
				return nil, fmt.Errorf("experiment: epoch %d barrier incomplete (%+v)", e, info)
			}
		}

		pt := StreamPoint{
			Epoch:            est.Seq,
			Beta:             float64(m) / float64(n+m),
			PartialKnowledge: est.PartialKnowledge,
			Targets:          est.Targets,
		}
		if pt.MSEBefore, err = metrics.MSE(est.Poisoned, trueF); err != nil {
			return nil, err
		}
		if pt.MSEAfter, err = metrics.MSE(est.Recovered, trueF); err != nil {
			return nil, err
		}
		// Frequency gain needs a genuine reference estimate; the first
		// epoch is clean by construction (AttackStart >= 1 whenever gain
		// matters) and serves as the stream's baseline.
		if cleanEst == nil {
			cleanEst = est.Poisoned
		}
		if pt.FGBefore, err = metrics.FrequencyGain(est.Poisoned, cleanEst, targets); err != nil {
			return nil, err
		}
		if pt.FGAfter, err = metrics.FrequencyGain(est.Recovered, cleanEst, targets); err != nil {
			return nil, err
		}
		if est.PartialKnowledge && out.StarEngagedAt < 0 {
			out.StarEngagedAt = e
			out.TargetsExact = equalTargetSets(est.Targets, targets)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// splitCounts deterministically partitions a union aggregate across k
// frontends, as if the reporting users were dealt round-robin: part j
// takes count/k per item plus one of the first count%k remainders, and
// the report total splits the same way. The parts sum back to the
// union exactly — the additivity the scale-out tier is built on.
func splitCounts(counts []int64, total int64, k int) (parts [][]int64, totals []int64) {
	parts = make([][]int64, k)
	for j := range parts {
		parts[j] = make([]int64, len(counts))
	}
	totals = make([]int64, k)
	for v, c := range counts {
		base, rem := c/int64(k), c%int64(k)
		for j := range parts {
			parts[j][v] = base
			if int64(j) < rem {
				parts[j][v]++
			}
		}
	}
	base, rem := total/int64(k), total%int64(k)
	for j := range totals {
		totals[j] = base
		if int64(j) < rem {
			totals[j]++
		}
	}
	return parts, totals
}

// rampBeta is the malicious fraction scheduled for epoch e: zero before
// AttackStart, a linear ramp over RampEpochs, then the full Beta.
func (s StreamScenario) rampBeta(e int) float64 {
	if e < s.AttackStart {
		return 0
	}
	step := e - s.AttackStart + 1
	if step >= s.RampEpochs {
		return s.Beta
	}
	return s.Beta * float64(step) / float64(s.RampEpochs)
}

// equalTargetSets compares two target sets as sets.
func equalTargetSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}
