package experiment

import (
	"fmt"
	"math"

	"ldprecover/internal/harmony"
	"ldprecover/internal/kv"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// This file implements the paper's extension experiments: §VII-A
// (mean estimation via Harmony) and the §VIII future-work direction
// (key-value collection). Neither has a figure in the paper; the tables
// quantify that LDPRecover transfers to both settings.

// ExtensionHarmony measures mean recovery under a +1-category crafting
// attack across β, at each of the paper's grid points: true mean,
// poisoned mean, recovered mean (partial knowledge of the promoted
// category, exact binary allocation).
func ExtensionHarmony(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	const trueMean = -0.35
	n := int64(float64(200000) * cfg.Scale)
	if n < 1000 {
		n = 1000
	}
	t := &Table{
		Title: fmt.Sprintf("Extension: Harmony mean recovery (true mean %+.2f, n=%d)", trueMean, n),
		Header: []string{"beta",
			"poisoned-mean", "poisoned-err",
			"recovered-mean", "recovered-err"},
	}
	h, err := harmony.New(DefaultEpsilon)
	if err != nil {
		return nil, err
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = trueMean
	}
	for _, beta := range beta2Sweep {
		var poisonedMean, recoveredMean float64
		for trial := 0; trial < cfg.Trials; trial++ {
			r := rng.New(cfg.Seed + uint64(trial)*131071)
			genCounts, err := h.SimulateCounts(r, values)
			if err != nil {
				return nil, err
			}
			m := maliciousCount(n, beta)
			combined := []int64{genCounts[harmony.Neg], genCounts[harmony.Pos] + m}
			poisoned, err := ldp.Unbias(combined, n+m, h.Params())
			if err != nil {
				return nil, err
			}
			eta := float64(m) / float64(n)
			res, err := harmony.RecoverMean(poisoned, DefaultEpsilon, eta, []int{harmony.Pos})
			if err != nil {
				return nil, err
			}
			poisonedMean += res.PoisonedMean
			recoveredMean += res.Mean
		}
		poisonedMean /= float64(cfg.Trials)
		recoveredMean /= float64(cfg.Trials)
		t.AddRow(fmt.Sprintf("%g", beta),
			fmt.Sprintf("%+.4f", poisonedMean),
			fmt.Sprintf("%.4f", math.Abs(poisonedMean-trueMean)),
			fmt.Sprintf("%+.4f", recoveredMean),
			fmt.Sprintf("%.4f", math.Abs(recoveredMean-trueMean)))
	}
	return []*Table{t}, nil
}

// ExtensionKeyValue measures joint frequency/mean recovery for the
// key-value protocol under a (target, +1) crafting attack across β.
func ExtensionKeyValue(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	const d, target = 20, 5
	const trueMean = -0.8
	n := int(float64(120000) * cfg.Scale)
	if n < 2000 {
		n = 2000
	}
	t := &Table{
		Title: fmt.Sprintf("Extension: key-value recovery (d=%d, n=%d, target mean %+.1f)", d, n, trueMean),
		Header: []string{"beta",
			"freq-true", "freq-poisoned", "freq-recovered",
			"mean-poisoned", "mean-recovered"},
	}
	proto, err := kv.New(d, 1.0, 1.0)
	if err != nil {
		return nil, err
	}
	// Zipf-ish key population; the target key is disliked.
	freqs := make([]float64, d)
	means := make([]float64, d)
	var z float64
	for k := 0; k < d; k++ {
		freqs[k] = 1 / float64(k+2)
		z += freqs[k]
		means[k] = 0.7 - 0.08*float64(k)
	}
	for k := range freqs {
		freqs[k] /= z
	}
	means[target] = trueMean

	for _, beta := range beta2Sweep {
		var fPoisoned, fRecovered, mPoisoned, mRecovered float64
		for trial := 0; trial < cfg.Trials; trial++ {
			r := rng.New(cfg.Seed + uint64(trial)*524287)
			reports := make([]kv.Report, 0, n)
			for k := 0; k < d; k++ {
				cnt := int(freqs[k] * float64(n))
				for i := 0; i < cnt; i++ {
					rep, err := proto.Perturb(r, kv.Pair{Key: k, Value: means[k]})
					if err != nil {
						return nil, err
					}
					reports = append(reports, rep)
				}
			}
			nGen := len(reports)
			m := maliciousCount(int64(nGen), beta)
			for i := int64(0); i < m; i++ {
				rep, err := proto.CraftReport(target, 1)
				if err != nil {
					return nil, err
				}
				reports = append(reports, rep)
			}
			agg, err := kv.AggregateReports(reports, d)
			if err != nil {
				return nil, err
			}
			poisoned, err := proto.Estimate(agg)
			if err != nil {
				return nil, err
			}
			rec, err := proto.Recover(agg, kv.RecoverOptions{
				Eta:        float64(m) / float64(nGen),
				Targets:    []int{target},
				AttackSign: 1,
			})
			if err != nil {
				return nil, err
			}
			fPoisoned += poisoned.Frequencies[target]
			fRecovered += rec.Frequencies[target]
			mPoisoned += poisoned.Means[target]
			mRecovered += rec.Means[target]
		}
		tr := float64(cfg.Trials)
		t.AddRow(fmt.Sprintf("%g", beta),
			fmt.Sprintf("%.4f", freqs[target]),
			fmt.Sprintf("%.4f", fPoisoned/tr),
			fmt.Sprintf("%.4f", fRecovered/tr),
			fmt.Sprintf("%+.3f", mPoisoned/tr),
			fmt.Sprintf("%+.3f", mRecovered/tr))
	}
	return []*Table{t}, nil
}

func init() {
	AblationRegistry["harmony"] = ExtensionHarmony
	AblationRegistry["keyvalue"] = ExtensionKeyValue
	AblationOrder = append(AblationOrder, "harmony", "keyvalue")
}
