package experiment

import (
	"fmt"
	"math"
	"strings"
)

// Table is a rendered experiment result: a title, a header row and data
// rows. Cells are strings so generators control their own formatting.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, row := range t.Rows {
		measure(row)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (quotes omitted; cells
// never contain commas by construction).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// sci formats a value in the paper's scientific style (e.g. 5.89E-4).
func sci(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2E", v)
}

// fixed formats a frequency-gain value.
func fixed(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%+.3f", v)
}
