package experiment

import (
	"reflect"
	"strings"
	"testing"

	"ldprecover/internal/dataset"
)

// TestRunStreamPresumEquivalence pins the experiment-layer half of the
// tally-first guarantee: the same streaming scenario run through 2 and
// 4 edge collectors — each partition folded locally and shipped as a
// wire-coded partial tally — produces bit-identical per-epoch metrics,
// the same LDPRecover* engagement epoch, and the same identified target
// set as the direct count-level run. Pre-aggregating at the edge is
// invisible to the pipeline.
func TestRunStreamPresumEquivalence(t *testing.T) {
	ds, err := dataset.Zipf("presum-eq", 48, 30_000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	base := StreamScenario{
		Dataset:     ds,
		Protocol:    OUE,
		Epsilon:     1,
		NumTargets:  2,
		Beta:        0.08,
		Epochs:      10,
		AttackStart: 5,
		StableAfter: 2,
		MinHistory:  2,
		Seed:        99,
	}
	want, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	if want.StarEngagedAt < 0 {
		t.Fatal("scenario never engaged LDPRecover*; the equivalence check is vacuous")
	}
	for _, presum := range []int{2, 4} {
		s := base
		s.Presum = presum
		got, err := RunStream(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-collector presum stream diverged from count-level\ngot  %+v\nwant %+v",
				presum, got, want)
		}
	}
}

// TestRunStreamPresumValidation: partials target a collecting node, so
// Presum cannot combine with the cluster tier, and absurd collector
// counts are rejected.
func TestRunStreamPresumValidation(t *testing.T) {
	ds, err := dataset.Zipf("presum-bad", 16, 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	s := StreamScenario{Dataset: ds, Protocol: OUE, Presum: 2, Frontends: 2}
	if _, err := RunStream(s); err == nil || !strings.Contains(err.Error(), "Presum") {
		t.Fatalf("Presum+Frontends: %v", err)
	}
	s = StreamScenario{Dataset: ds, Protocol: OUE, Presum: -1}
	if _, err := RunStream(s); err == nil {
		t.Fatal("negative Presum accepted")
	}
}
