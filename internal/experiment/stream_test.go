package experiment

import (
	"testing"

	"ldprecover/internal/dataset"
)

// TestRunStreamTracksRampingAttack is the streaming scenario's
// acceptance: a clean phase, a mid-stream MGA ramp, and recovery that
// tracks it — the poisoned window error inflates with the attack while
// the recovered error stays below it, and cross-epoch detection engages
// LDPRecover* on the attacker's actual targets.
func TestRunStreamTracksRampingAttack(t *testing.T) {
	ds, err := dataset.Zipf("stream-test", 64, 60000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	s := StreamScenario{
		Dataset:     ds,
		Protocol:    OUE,
		Epsilon:     1.0,
		Beta:        0.1,
		NumTargets:  5,
		Epochs:      16,
		AttackStart: 8,
		RampEpochs:  3,
		StableAfter: 2,
		Seed:        5,
	}
	res, err := RunStream(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != s.Epochs {
		t.Fatalf("%d points for %d epochs", len(res.Points), s.Epochs)
	}

	// The ramp schedule is honored.
	for e, pt := range res.Points {
		if pt.Epoch != e {
			t.Fatalf("point %d has epoch %d", e, pt.Epoch)
		}
		if e < s.AttackStart && pt.Beta != 0 {
			t.Fatalf("epoch %d attacked before AttackStart (beta %v)", e, pt.Beta)
		}
		if e >= s.AttackStart && pt.Beta <= 0 {
			t.Fatalf("epoch %d not attacked after AttackStart", e)
		}
	}
	steady := res.Points[s.Epochs-1]
	if got := steady.Beta; got < 0.09 || got > 0.11 {
		t.Fatalf("steady-state beta %v, want ~%v", got, s.Beta)
	}

	// Clean phase: no partial knowledge, small errors.
	var cleanMSE float64
	for _, pt := range res.Points[:s.AttackStart] {
		if pt.PartialKnowledge {
			t.Fatalf("epoch %d: LDPRecover* before any attack", pt.Epoch)
		}
		cleanMSE += pt.MSEBefore
	}
	cleanMSE /= float64(s.AttackStart)

	// Attack phase: the poisoned estimate inflates well above the clean
	// baseline, the attacker gains frequency on its targets, and
	// recovery claws most of both back.
	if steady.MSEBefore < 5*cleanMSE {
		t.Fatalf("attack barely visible: clean MSE %v, attacked MSE %v", cleanMSE, steady.MSEBefore)
	}
	if steady.MSEAfter >= steady.MSEBefore/2 {
		t.Fatalf("recovery not tracking: MSE %v -> %v", steady.MSEBefore, steady.MSEAfter)
	}
	if steady.FGBefore <= 0 {
		t.Fatalf("targeted attack gained nothing: FG %v", steady.FGBefore)
	}
	if steady.FGAfter >= steady.FGBefore/2 {
		t.Fatalf("recovery left most of the gain: FG %v -> %v", steady.FGBefore, steady.FGAfter)
	}

	// The stream upgraded itself, on the true targets, only after the
	// attack began.
	if res.StarEngagedAt < s.AttackStart {
		t.Fatalf("LDPRecover* engaged at epoch %d, attack starts at %d",
			res.StarEngagedAt, s.AttackStart)
	}
	if res.StarEngagedAt < 0 {
		t.Fatal("LDPRecover* never engaged")
	}
	if !res.TargetsExact {
		t.Fatalf("stable targets %v differ from true targets %v",
			res.Points[res.StarEngagedAt].Targets, res.TrueTargets)
	}
	if !steady.PartialKnowledge {
		t.Fatal("LDPRecover* not engaged at steady state")
	}
}

// TestRunStreamValidation covers scenario validation and defaulting.
func TestRunStreamValidation(t *testing.T) {
	ds, err := dataset.Zipf("stream-test", 16, 5000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStream(StreamScenario{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := RunStream(StreamScenario{Dataset: ds, Beta: 1.5}); err == nil {
		t.Fatal("beta 1.5 accepted")
	}
	if _, err := RunStream(StreamScenario{Dataset: ds, Epochs: 4, AttackStart: 9}); err == nil {
		t.Fatal("attack start beyond stream accepted")
	}
	// A short clean stream runs with pure defaults.
	res, err := RunStream(StreamScenario{Dataset: ds, Epochs: 3, AttackStart: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || res.StarEngagedAt != -1 {
		t.Fatalf("clean stream: %+v", res)
	}
}
