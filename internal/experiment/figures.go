package experiment

import (
	"fmt"

	"ldprecover/internal/dataset"
)

// Config controls a figure/table regeneration run.
type Config struct {
	// Scale shrinks the datasets (1 = paper scale, 0.02 = bench scale).
	Scale float64
	// Trials overrides the per-cell trial count (0 = paper default 10).
	Trials int
	// Seed fixes the run's randomness.
	Seed uint64
	// Workers sets the per-trial batch-simulation parallelism
	// (ldp.BatchSimulate); 0 or 1 keeps the sequential sampler.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Trials == 0 {
		c.Trials = DefaultTrials
	}
	if c.Seed == 0 {
		c.Seed = 20240403 // arbitrary fixed default
	}
	if c.Workers == 0 {
		c.Workers = 1 // sequential sampler: seeded runs reproduce across machines
	}
	return c
}

// ipums and fire return the scaled dataset surrogates.
func (c Config) ipums() (*dataset.Dataset, error) {
	return dataset.SyntheticIPUMS().Scaled(c.Scale)
}

func (c Config) fire() (*dataset.Dataset, error) {
	return dataset.SyntheticFire().Scaled(c.Scale)
}

// figure3Combos lists the attack-protocol pairs on Fig. 3's x axis.
var figure3Combos = []struct {
	Attack   AttackKind
	Protocol ProtocolKind
}{
	{ManipAttack, GRR},
	{MGAAttack, GRR},
	{MGAAttack, OUE},
	{MGAAttack, OLH},
	{AAAttack, GRR},
	{AAAttack, OUE},
	{AAAttack, OLH},
}

// Every figure generator builds its whole scenario grid first, evaluates
// all cells concurrently through runGrid, then assembles the tables from
// the finished metrics in grid order — the output is bit-identical to
// the former sequential sweep, only the wall clock changes.

// Figure3 regenerates Fig. 3: MSE of Before recovery / Detection /
// LDPRecover / LDPRecover* across attacks and protocols, one table per
// dataset.
func Figure3(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	dss, err := bothDatasets(cfg)
	if err != nil {
		return nil, err
	}
	var cells []*gridCell
	for _, dsb := range dss {
		for _, combo := range figure3Combos {
			cells = append(cells, &gridCell{
				tag: fmt.Sprintf("fig3 %s-%s", combo.Attack, combo.Protocol),
				scn: Scenario{
					Dataset:      dsb.ds,
					Protocol:     combo.Protocol,
					Attack:       combo.Attack,
					Trials:       cfg.Trials,
					Seed:         cfg.Seed,
					Workers:      cfg.Workers,
					RunDetection: true,
				},
			})
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	var tables []*Table
	i := 0
	for _, dsb := range dss {
		t := &Table{
			Title:  fmt.Sprintf("Figure 3 (%s): MSE by attack and method", dsb.name),
			Header: []string{"attack", "before", "detection", "ldprecover", "ldprecover*"},
		}
		for _, combo := range figure3Combos {
			m := cells[i].m
			i++
			t.AddRow(
				fmt.Sprintf("%s-%s", combo.Attack, combo.Protocol),
				sci(m.MSEBefore), sci(m.MSEDetect), sci(m.MSEAfter), sci(m.MSEStar),
			)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// namedDataset pairs a dataset with its display name.
type namedDataset struct {
	name string
	ds   *dataset.Dataset
}

func bothDatasets(cfg Config) ([]namedDataset, error) {
	ipums, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	fire, err := cfg.fire()
	if err != nil {
		return nil, err
	}
	return []namedDataset{{"IPUMS", ipums}, {"Fire", fire}}, nil
}

// Figure4 regenerates Fig. 4: frequency gain of MGA per protocol and
// method, one table per dataset.
func Figure4(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	dss, err := bothDatasets(cfg)
	if err != nil {
		return nil, err
	}
	var cells []*gridCell
	for _, dsb := range dss {
		for _, proto := range AllProtocols {
			cells = append(cells, &gridCell{
				tag: fmt.Sprintf("fig4 MGA-%s", proto),
				scn: Scenario{
					Dataset:      dsb.ds,
					Protocol:     proto,
					Attack:       MGAAttack,
					Trials:       cfg.Trials,
					Seed:         cfg.Seed,
					Workers:      cfg.Workers,
					RunDetection: true,
				},
			})
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	var tables []*Table
	i := 0
	for _, dsb := range dss {
		t := &Table{
			Title:  fmt.Sprintf("Figure 4 (%s): frequency gain (FG) under MGA", dsb.name),
			Header: []string{"protocol", "before", "detection", "ldprecover", "ldprecover*"},
		}
		for _, proto := range AllProtocols {
			m := cells[i].m
			i++
			t.AddRow(
				fmt.Sprintf("MGA-%s", proto),
				fixed(m.FGBefore), fixed(m.FGDetect), fixed(m.FGAfter), fixed(m.FGStar),
			)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Paper sweep grids (§VI-D).
var (
	betaSweep  = []float64{0.001, 0.005, 0.01, 0.05, 0.1}
	epsSweep   = []float64{0.1, 0.2, 0.4, 0.8, 1.6}
	etaSweep   = []float64{0.01, 0.05, 0.1, 0.2, 0.4}
	beta2Sweep = []float64{0.05, 0.1, 0.15, 0.2, 0.25}
	xiSweep    = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
)

// parameterSweep renders one Fig. 5/6-style table: MSE vs a swept
// parameter for AA across the three protocols.
func parameterSweep(cfg Config, ds *dataset.Dataset, dsName, param string, values []float64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("MSE vs %s (AA, %s)", param, dsName),
		Header: []string{param,
			"GRR-before", "GRR-rec", "GRR-rec*",
			"OUE-before", "OUE-rec", "OUE-rec*",
			"OLH-before", "OLH-rec", "OLH-rec*"},
	}
	var cells []*gridCell
	for _, val := range values {
		for _, proto := range AllProtocols {
			s := Scenario{
				Dataset:  ds,
				Protocol: proto,
				Attack:   AAAttack,
				Trials:   cfg.Trials,
				Seed:     cfg.Seed,
				Workers:  cfg.Workers,
			}
			switch param {
			case "beta":
				s.Beta = val
			case "epsilon":
				s.Epsilon = val
			case "eta":
				s.Eta = val
			default:
				return nil, fmt.Errorf("experiment: unknown sweep parameter %q", param)
			}
			cells = append(cells, &gridCell{
				tag: fmt.Sprintf("sweep %s=%v %s", param, val, proto),
				scn: s,
			})
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	i := 0
	for _, val := range values {
		row := []string{fmt.Sprintf("%g", val)}
		for range AllProtocols {
			m := cells[i].m
			i++
			row = append(row, sci(m.MSEBefore), sci(m.MSEAfter), sci(m.MSEStar))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure5 regenerates Fig. 5: the beta/epsilon/eta sweeps on IPUMS.
func Figure5(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	return sweepsFor(cfg, ds, "IPUMS", "Figure 5")
}

// Figure6 regenerates Fig. 6: the same sweeps on Fire.
func Figure6(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.fire()
	if err != nil {
		return nil, err
	}
	return sweepsFor(cfg, ds, "Fire", "Figure 6")
}

func sweepsFor(cfg Config, ds *dataset.Dataset, dsName, figName string) ([]*Table, error) {
	var tables []*Table
	for _, sweep := range []struct {
		param  string
		values []float64
	}{{"beta", betaSweep}, {"epsilon", epsSweep}, {"eta", etaSweep}} {
		t, err := parameterSweep(cfg, ds, dsName, sweep.param, sweep.values)
		if err != nil {
			return nil, err
		}
		t.Title = figName + " — " + t.Title
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure7 regenerates Fig. 7: MSE between estimated and true malicious
// frequencies for LDPRecover vs LDPRecover* under MGA on IPUMS.
func Figure7(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 7: malicious-frequency estimation MSE (MGA, IPUMS)",
		Header: []string{"beta",
			"GRR-ldprecover", "GRR-ldprecover*",
			"OUE-ldprecover", "OUE-ldprecover*",
			"OLH-ldprecover", "OLH-ldprecover*"},
	}
	var cells []*gridCell
	for _, beta := range beta2Sweep {
		for _, proto := range AllProtocols {
			cells = append(cells, &gridCell{
				tag: fmt.Sprintf("fig7 beta=%v %s", beta, proto),
				scn: Scenario{
					Dataset:  ds,
					Protocol: proto,
					Attack:   MGAAttack,
					Beta:     beta,
					Trials:   cfg.Trials,
					Seed:     cfg.Seed,
					Workers:  cfg.Workers,
				},
			})
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	i := 0
	for _, beta := range beta2Sweep {
		row := []string{fmt.Sprintf("%g", beta)}
		for range AllProtocols {
			m := cells[i].m
			i++
			row = append(row, sci(m.MSEMalNK), sci(m.MSEMalPK))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// TableI regenerates Table I: MSE of LDPRecover run on unpoisoned
// frequencies (beta = 0).
func TableI(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ipums, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	fire, err := cfg.fire()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Table I: LDPRecover on unpoisoned frequencies (beta=0)",
		Header: []string{"protocol",
			"IPUMS-before-rec", "IPUMS-after-rec",
			"Fire-before-rec", "Fire-after-rec"},
	}
	dss := []*dataset.Dataset{ipums, fire}
	var cells []*gridCell
	for _, proto := range AllProtocols {
		for _, ds := range dss {
			cells = append(cells, &gridCell{
				tag: fmt.Sprintf("table1 %s %s", proto, ds.Name),
				scn: Scenario{
					Dataset:  ds,
					Protocol: proto,
					Attack:   NoAttack,
					Beta:     0,
					Trials:   cfg.Trials,
					Seed:     cfg.Seed,
					Workers:  cfg.Workers,
				},
			})
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	i := 0
	for _, proto := range AllProtocols {
		row := []string{proto.String()}
		for range dss {
			m := cells[i].m
			i++
			row = append(row, sci(m.MSEGenuine), sci(m.MSEAfter))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Figure8 regenerates Fig. 8: poisoned MSE of MGA under the general
// poisoning model vs under input poisoning (MGA-IPA), IPUMS, no recovery.
func Figure8(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 8: MGA vs MGA-IPA poisoned MSE (IPUMS)",
		Header: []string{"beta",
			"GRR-mga", "GRR-mga-ipa",
			"OUE-mga", "OUE-mga-ipa",
			"OLH-mga", "OLH-mga-ipa"},
	}
	attacks := []AttackKind{MGAAttack, MGAIPAAttack}
	var cells []*gridCell
	for _, beta := range beta2Sweep {
		for _, proto := range AllProtocols {
			for _, atk := range attacks {
				cells = append(cells, &gridCell{
					tag: fmt.Sprintf("fig8 beta=%v %s %s", beta, atk, proto),
					scn: Scenario{
						Dataset:      ds,
						Protocol:     proto,
						Attack:       atk,
						Beta:         beta,
						Trials:       cfg.Trials,
						Seed:         cfg.Seed,
						Workers:      cfg.Workers,
						SkipRecovery: true,
					},
				})
			}
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	i := 0
	for _, beta := range beta2Sweep {
		row := []string{fmt.Sprintf("%g", beta)}
		for range AllProtocols {
			for range attacks {
				m := cells[i].m
				i++
				row = append(row, sci(m.MSEBefore))
			}
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Figure9 regenerates Fig. 9: the k-means defense and LDPRecover-KM under
// MGA-IPA on IPUMS across subset sample rates.
func Figure9(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 9: k-means vs LDPRecover-KM under MGA-IPA (IPUMS)",
		Header: []string{"xi",
			"GRR-before", "GRR-kmeans", "GRR-ldprecover-km",
			"OUE-before", "OUE-kmeans", "OUE-ldprecover-km",
			"OLH-before", "OLH-kmeans", "OLH-ldprecover-km"},
	}
	var cells []*gridCell
	for _, xi := range xiSweep {
		for _, proto := range AllProtocols {
			cells = append(cells, &gridCell{
				tag: fmt.Sprintf("fig9 xi=%v %s", xi, proto),
				scn: Scenario{
					Dataset:      ds,
					Protocol:     proto,
					Attack:       MGAIPAAttack,
					Trials:       cfg.Trials,
					Seed:         cfg.Seed,
					Workers:      cfg.Workers,
					RunKMeans:    true,
					Xi:           xi,
					SkipRecovery: true,
				},
			})
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	i := 0
	for _, xi := range xiSweep {
		row := []string{fmt.Sprintf("%g", xi)}
		for range AllProtocols {
			m := cells[i].m
			i++
			row = append(row, sci(m.MSEBefore), sci(m.MSEKMeans), sci(m.MSEKM))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Figure10 regenerates Fig. 10: LDPRecover under the five-attacker
// adaptive attack (MUL-AA) on IPUMS.
func Figure10(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := cfg.ipums()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 10: multi-attacker AA (5 attackers, IPUMS)",
		Header: []string{"beta",
			"GRR-before", "GRR-ldprecover",
			"OUE-before", "OUE-ldprecover",
			"OLH-before", "OLH-ldprecover"},
	}
	var cells []*gridCell
	for _, beta := range beta2Sweep {
		for _, proto := range AllProtocols {
			cells = append(cells, &gridCell{
				tag: fmt.Sprintf("fig10 beta=%v %s", beta, proto),
				scn: Scenario{
					Dataset:  ds,
					Protocol: proto,
					Attack:   MultiAAAttack,
					Beta:     beta,
					Trials:   cfg.Trials,
					Seed:     cfg.Seed,
					Workers:  cfg.Workers,
				},
			})
		}
	}
	if err := runGrid(cells); err != nil {
		return nil, err
	}
	i := 0
	for _, beta := range beta2Sweep {
		row := []string{fmt.Sprintf("%g", beta)}
		for range AllProtocols {
			m := cells[i].m
			i++
			row = append(row, sci(m.MSEBefore), sci(m.MSEAfter))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Registry maps experiment ids to their generators for the CLI and docs.
var Registry = map[string]func(Config) ([]*Table, error){
	"fig3":   Figure3,
	"fig4":   Figure4,
	"fig5":   Figure5,
	"fig6":   Figure6,
	"fig7":   Figure7,
	"table1": TableI,
	"fig8":   Figure8,
	"fig9":   Figure9,
	"fig10":  Figure10,
}

// RegistryOrder lists experiment ids in paper order.
var RegistryOrder = []string{
	"fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig8", "fig9", "fig10",
}
