package experiment

import (
	"math/rand"
	"reflect"
	"testing"

	"ldprecover/internal/dataset"
)

// TestRunStreamClusterEquivalence pins the experiment-layer half of the
// scale-out guarantee: the same streaming scenario run through 1, 3,
// and 5 frontends produces bit-identical per-epoch metrics, the same
// LDPRecover* engagement epoch, and the same identified target set —
// partitioning the population across ingest nodes is invisible to the
// merged pipeline.
func TestRunStreamClusterEquivalence(t *testing.T) {
	ds, err := dataset.Zipf("cluster-eq", 48, 30_000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	base := StreamScenario{
		Dataset:     ds,
		Protocol:    OUE,
		Epsilon:     1,
		NumTargets:  2,
		Beta:        0.08,
		Epochs:      10,
		AttackStart: 5,
		StableAfter: 2,
		MinHistory:  2,
		Seed:        99,
	}
	want, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	if want.StarEngagedAt < 0 {
		t.Fatal("scenario never engaged LDPRecover*; the equivalence check is vacuous")
	}
	for _, frontends := range []int{3, 5} {
		s := base
		s.Frontends = frontends
		got, err := RunStream(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-frontend stream diverged from single-node\ngot  %+v\nwant %+v",
				frontends, got, want)
		}
	}
}

// TestRunStreamChurnEquivalence pins the experiment-layer half of the
// elasticity guarantee: a cluster whose membership churns mid-stream —
// a frontend joining, another leaving, a third joining late — produces
// per-epoch metrics bit-identical to the uninterrupted single-node
// pipeline. Partitioning across a *changing* node set is as invisible
// to the merged estimates as partitioning across a static one.
func TestRunStreamChurnEquivalence(t *testing.T) {
	ds, err := dataset.Zipf("cluster-churn", 48, 30_000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	base := StreamScenario{
		Dataset:     ds,
		Protocol:    OUE,
		Epsilon:     1,
		NumTargets:  2,
		Beta:        0.08,
		Epochs:      10,
		AttackStart: 5,
		StableAfter: 2,
		MinHistory:  2,
		Seed:        99,
	}
	want, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	if want.StarEngagedAt < 0 {
		t.Fatal("scenario never engaged LDPRecover*; the equivalence check is vacuous")
	}
	s := base
	s.Frontends = 3
	s.Churn = []ChurnEvent{
		{Epoch: 2, Node: "fe-3"},              // join while clean
		{Epoch: 4, Node: "fe-1", Leave: true}, // leave right before the attack
		{Epoch: 7, Node: "fe-4"},              // join mid-attack
	}
	got, err := RunStream(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("churning cluster diverged from single-node\ngot  %+v\nwant %+v", got, want)
	}
}

// TestRunStreamChurnRandomSchedules is the property-style sweep: random
// join/leave schedules (never below one member, deterministic per
// seed) always converge to the static single-node metrics.
func TestRunStreamChurnRandomSchedules(t *testing.T) {
	ds, err := dataset.Zipf("cluster-churn-rand", 32, 20_000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	base := StreamScenario{
		Dataset:     ds,
		Protocol:    OUE,
		Epsilon:     1,
		NumTargets:  2,
		Beta:        0.08,
		Epochs:      8,
		AttackStart: 4,
		StableAfter: 2,
		MinHistory:  2,
		Seed:        7,
	}
	want, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		const frontends = 3
		active := []string{"fe-0", "fe-1", "fe-2"}
		pool := []string{"fe-3", "fe-4", "fe-5"}
		var churn []ChurnEvent
		for e := 1; e < base.Epochs; e++ {
			switch r.Intn(3) {
			case 0: // join a pooled node
				if len(pool) > 0 {
					n := pool[0]
					pool = pool[1:]
					active = append(active, n)
					churn = append(churn, ChurnEvent{Epoch: e, Node: n})
				}
			case 1: // leave, never dropping below one member
				if len(active) > 1 {
					i := r.Intn(len(active))
					n := active[i]
					active = append(active[:i], active[i+1:]...)
					churn = append(churn, ChurnEvent{Epoch: e, Node: n, Leave: true})
				}
			}
		}
		s := base
		s.Frontends = frontends
		s.Churn = churn
		got, err := RunStream(s)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, churn, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: churn schedule %v diverged from single-node", trial, churn)
		}
	}
}

// TestStreamChurnValidation: a churn schedule without a cluster, an
// out-of-range epoch, or a nameless event is rejected up front.
func TestStreamChurnValidation(t *testing.T) {
	ds, err := dataset.Zipf("churn-val", 16, 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]StreamScenario{
		"no-cluster": {Dataset: ds, Protocol: OUE, Epochs: 4,
			Churn: []ChurnEvent{{Epoch: 1, Node: "fe-9"}}},
		"epoch-out-of-range": {Dataset: ds, Protocol: OUE, Epochs: 4, Frontends: 2,
			Churn: []ChurnEvent{{Epoch: 4, Node: "fe-9"}}},
		"nameless": {Dataset: ds, Protocol: OUE, Epochs: 4, Frontends: 2,
			Churn: []ChurnEvent{{Epoch: 1}}},
	} {
		if _, err := RunStream(s); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestSplitCountsExact: the partition helper deals every unit of count
// and every report to exactly one frontend.
func TestSplitCountsExact(t *testing.T) {
	counts := []int64{0, 1, 2, 3, 100, 101, 7}
	const total, k = 214, 3
	parts, totals := splitCounts(counts, total, k)
	if len(parts) != k || len(totals) != k {
		t.Fatalf("split into %d/%d parts", len(parts), len(totals))
	}
	sumCounts := make([]int64, len(counts))
	var sumTotal int64
	for j := range parts {
		for v, c := range parts[j] {
			if c < 0 {
				t.Fatalf("negative split count at part %d item %d", j, v)
			}
			sumCounts[v] += c
		}
		sumTotal += totals[j]
	}
	if !reflect.DeepEqual(sumCounts, counts) || sumTotal != total {
		t.Fatalf("split does not sum back: counts %v total %d", sumCounts, sumTotal)
	}
}

// TestStreamScenarioFrontendsValidation: a negative or absurd frontend
// count is rejected up front.
func TestStreamScenarioFrontendsValidation(t *testing.T) {
	ds, err := dataset.Zipf("cluster-val", 16, 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 1<<10 + 1} {
		s := StreamScenario{Dataset: ds, Protocol: OUE, Frontends: bad}
		if _, err := RunStream(s); err == nil {
			t.Fatalf("Frontends=%d accepted", bad)
		}
	}
}
