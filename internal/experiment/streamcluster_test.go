package experiment

import (
	"reflect"
	"testing"

	"ldprecover/internal/dataset"
)

// TestRunStreamClusterEquivalence pins the experiment-layer half of the
// scale-out guarantee: the same streaming scenario run through 1, 3,
// and 5 frontends produces bit-identical per-epoch metrics, the same
// LDPRecover* engagement epoch, and the same identified target set —
// partitioning the population across ingest nodes is invisible to the
// merged pipeline.
func TestRunStreamClusterEquivalence(t *testing.T) {
	ds, err := dataset.Zipf("cluster-eq", 48, 30_000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	base := StreamScenario{
		Dataset:     ds,
		Protocol:    OUE,
		Epsilon:     1,
		NumTargets:  2,
		Beta:        0.08,
		Epochs:      10,
		AttackStart: 5,
		StableAfter: 2,
		MinHistory:  2,
		Seed:        99,
	}
	want, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	if want.StarEngagedAt < 0 {
		t.Fatal("scenario never engaged LDPRecover*; the equivalence check is vacuous")
	}
	for _, frontends := range []int{3, 5} {
		s := base
		s.Frontends = frontends
		got, err := RunStream(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-frontend stream diverged from single-node\ngot  %+v\nwant %+v",
				frontends, got, want)
		}
	}
}

// TestSplitCountsExact: the partition helper deals every unit of count
// and every report to exactly one frontend.
func TestSplitCountsExact(t *testing.T) {
	counts := []int64{0, 1, 2, 3, 100, 101, 7}
	const total, k = 214, 3
	parts, totals := splitCounts(counts, total, k)
	if len(parts) != k || len(totals) != k {
		t.Fatalf("split into %d/%d parts", len(parts), len(totals))
	}
	sumCounts := make([]int64, len(counts))
	var sumTotal int64
	for j := range parts {
		for v, c := range parts[j] {
			if c < 0 {
				t.Fatalf("negative split count at part %d item %d", j, v)
			}
			sumCounts[v] += c
		}
		sumTotal += totals[j]
	}
	if !reflect.DeepEqual(sumCounts, counts) || sumTotal != total {
		t.Fatalf("split does not sum back: counts %v total %d", sumCounts, sumTotal)
	}
}

// TestStreamScenarioFrontendsValidation: a negative or absurd frontend
// count is rejected up front.
func TestStreamScenarioFrontendsValidation(t *testing.T) {
	ds, err := dataset.Zipf("cluster-val", 16, 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 1<<10 + 1} {
		s := StreamScenario{Dataset: ds, Protocol: OUE, Frontends: bad}
		if _, err := RunStream(s); err == nil {
			t.Fatalf("Frontends=%d accepted", bad)
		}
	}
}
