package experiment

import (
	"math"
	"testing"

	"ldprecover/internal/dataset"
)

// testDataset returns a small Zipf dataset for fast scenario tests.
func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Zipf("test", 40, 20000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestScenarioValidation(t *testing.T) {
	ds := testDataset(t)
	if _, err := Run(Scenario{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Run(Scenario{Dataset: ds, Beta: 1.5}); err == nil {
		t.Fatal("beta >= 1 accepted")
	}
	if _, err := Run(Scenario{Dataset: ds, Attack: NoAttack, Beta: 0.1}); err == nil {
		t.Fatal("NoAttack with beta > 0 accepted")
	}
	if _, err := Run(Scenario{Dataset: ds, Attack: MGAAttack, Eta: -1}); err == nil {
		t.Fatal("negative eta accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if GRR.String() != "GRR" || OUE.String() != "OUE" || OLH.String() != "OLH" {
		t.Fatal("protocol names wrong")
	}
	if ProtocolKind(9).String() == "" {
		t.Fatal("unknown protocol name empty")
	}
	names := map[AttackKind]string{
		NoAttack: "none", ManipAttack: "Manip", MGAAttack: "MGA",
		AAAttack: "AA", MGAIPAAttack: "MGA-IPA", MultiAAAttack: "MUL-AA",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("attack %d name %q want %q", int(k), k.String(), want)
		}
	}
	if AttackKind(99).String() == "" {
		t.Fatal("unknown attack name empty")
	}
}

func TestMaliciousCount(t *testing.T) {
	if maliciousCount(1000, 0) != 0 {
		t.Fatal("beta=0 should give m=0")
	}
	// beta=0.05: m = 1000*0.05/0.95 ~= 53.
	if got := maliciousCount(1000, 0.05); got != 53 {
		t.Fatalf("m = %d want 53", got)
	}
	// Check beta round trip: m/(n+m) ~= beta.
	m := maliciousCount(100000, 0.2)
	beta := float64(m) / float64(100000+m)
	if math.Abs(beta-0.2) > 0.001 {
		t.Fatalf("beta round trip %v", beta)
	}
}

func TestRunNoAttack(t *testing.T) {
	m, err := Run(Scenario{
		Dataset:  testDataset(t),
		Protocol: OUE,
		Attack:   NoAttack,
		Beta:     0,
		Trials:   3,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasRecovery || m.HasStar || m.HasFG || m.HasDetect || m.HasKM {
		t.Fatalf("flags wrong: %+v", m)
	}
	if m.MSEBefore != m.MSEGenuine {
		t.Fatal("beta=0 must have MSEBefore == MSEGenuine")
	}
	if m.MSEGenuine <= 0 || m.MSEAfter <= 0 {
		t.Fatalf("degenerate MSEs: %+v", m)
	}
}

// TestRunMGAShape checks the paper's headline ordering at test scale:
// recovery reduces MSE, LDPRecover* does at least as well as LDPRecover,
// FG collapses after recovery.
func TestRunMGAShape(t *testing.T) {
	for _, proto := range AllProtocols {
		m, err := Run(Scenario{
			Dataset:      testDataset(t),
			Protocol:     proto,
			Attack:       MGAAttack,
			Trials:       5,
			Seed:         7,
			RunDetection: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !m.HasStar || !m.HasFG || !m.HasDetect || !m.HasMal {
			t.Fatalf("%s: flags wrong: %+v", proto, m)
		}
		if m.MSEAfter >= m.MSEBefore {
			t.Fatalf("%s: recovery did not reduce MSE: before %v after %v",
				proto, m.MSEBefore, m.MSEAfter)
		}
		if m.FGBefore <= 0 {
			t.Fatalf("%s: attack produced no frequency gain: %v", proto, m.FGBefore)
		}
		if math.Abs(m.FGAfter) >= m.FGBefore {
			t.Fatalf("%s: recovery did not reduce FG: before %v after %v",
				proto, m.FGBefore, m.FGAfter)
		}
		// Partial knowledge estimates malicious frequencies at least as
		// accurately (Fig. 7's finding).
		if m.MSEMalPK > m.MSEMalNK*1.5 {
			t.Fatalf("%s: partial knowledge worsened malicious estimate: %v vs %v",
				proto, m.MSEMalPK, m.MSEMalNK)
		}
	}
}

func TestRunAARecoveryHelps(t *testing.T) {
	for _, proto := range AllProtocols {
		m, err := Run(Scenario{
			Dataset:  testDataset(t),
			Protocol: proto,
			Attack:   AAAttack,
			Trials:   5,
			Seed:     11,
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if m.MSEAfter >= m.MSEBefore {
			t.Fatalf("%s: AA recovery failed: before %v after %v",
				proto, m.MSEBefore, m.MSEAfter)
		}
	}
}

func TestRunManip(t *testing.T) {
	m, err := Run(Scenario{
		Dataset:  testDataset(t),
		Protocol: GRR,
		Attack:   ManipAttack,
		Trials:   5,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.HasFG {
		t.Fatal("untargeted attack reported FG")
	}
	if m.MSEAfter >= m.MSEBefore {
		t.Fatalf("Manip recovery failed: before %v after %v", m.MSEBefore, m.MSEAfter)
	}
}

func TestRunMGAIPAWeak(t *testing.T) {
	mga, err := Run(Scenario{
		Dataset: testDataset(t), Protocol: GRR, Attack: MGAAttack,
		Trials: 3, Seed: 17, SkipRecovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ipa, err := Run(Scenario{
		Dataset: testDataset(t), Protocol: GRR, Attack: MGAIPAAttack,
		Trials: 3, Seed: 17, SkipRecovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the attack-induced MSE excess over each run's own LDP noise
	// floor: the general poisoning model must dominate input poisoning.
	mgaExcess := mga.MSEBefore - mga.MSEGenuine
	ipaExcess := ipa.MSEBefore - ipa.MSEGenuine
	if ipaExcess < 0 {
		ipaExcess = 0
	}
	if mgaExcess < 5*(ipaExcess+1e-6) {
		t.Fatalf("MGA excess (%v) not much stronger than MGA-IPA excess (%v)",
			mgaExcess, ipaExcess)
	}
	if mga.HasRecovery || ipa.HasRecovery {
		t.Fatal("SkipRecovery ignored")
	}
}

func TestRunMultiAttacker(t *testing.T) {
	m, err := Run(Scenario{
		Dataset:  testDataset(t),
		Protocol: OUE,
		Attack:   MultiAAAttack,
		Trials:   3,
		Seed:     19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.MSEAfter >= m.MSEBefore {
		t.Fatalf("multi-attacker recovery failed: before %v after %v",
			m.MSEBefore, m.MSEAfter)
	}
}

func TestRunKMeansPath(t *testing.T) {
	m, err := Run(Scenario{
		Dataset:      testDataset(t),
		Protocol:     GRR,
		Attack:       MGAIPAAttack,
		Trials:       3,
		Seed:         23,
		RunKMeans:    true,
		Xi:           0.5,
		SkipRecovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasKM {
		t.Fatal("k-means metrics missing")
	}
	if m.MSEKMeans <= 0 || m.MSEKM <= 0 {
		t.Fatalf("degenerate k-means MSEs: %+v", m)
	}
}

func TestRunReportLevelAgreesWithCountLevel(t *testing.T) {
	base := Scenario{
		Dataset:  testDataset(t),
		Protocol: GRR,
		Attack:   MGAAttack,
		Trials:   5,
		Seed:     29,
	}
	fast, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	exact := base
	exact.ReportLevel = true
	slow, err := Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	// Same statistics, independent randomness: agree within 3x (MSEs are
	// noisy at this scale; the ablation bench measures this more tightly).
	if fast.MSEBefore > 3*slow.MSEBefore || slow.MSEBefore > 3*fast.MSEBefore {
		t.Fatalf("sim paths disagree: fast %v exact %v", fast.MSEBefore, slow.MSEBefore)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	s := Scenario{
		Dataset:  testDataset(t),
		Protocol: OLH,
		Attack:   AAAttack,
		Trials:   2,
		Seed:     31,
	}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.MSEBefore != b.MSEBefore || a.MSEAfter != b.MSEAfter {
		t.Fatal("same seed produced different results")
	}
}
