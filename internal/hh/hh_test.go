package hh

import (
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	r := rng.New(1)
	items := []int{0, 1, 2}
	bad := []Config{
		{Bits: 0, K: 3, Epsilon: 1},
		{Bits: 30, K: 3, Epsilon: 1},
		{Bits: 8, K: 0, Epsilon: 1},
		{Bits: 8, K: 3, Epsilon: 0},
		{Bits: 8, K: 3, Epsilon: 1, StartBits: 9},
		{Bits: 8, K: 3, Epsilon: 1, StepBits: -1},
	}
	for i, cfg := range bad {
		if _, err := Identify(r, cfg, items, nil); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
	good := Config{Bits: 8, K: 3, Epsilon: 1}
	if _, err := Identify(nil, good, items, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := Identify(r, good, nil, nil); err == nil {
		t.Fatal("no users accepted")
	}
	if _, err := Identify(r, good, []int{300}, nil); err == nil {
		t.Fatal("out-of-domain item accepted")
	}
}

func TestLevelsEndAtBits(t *testing.T) {
	cfg := Config{Bits: 10, StartBits: 4, StepBits: 2, K: 1, Epsilon: 1}
	ls := cfg.levels()
	if ls[0] != 4 || ls[len(ls)-1] != 10 {
		t.Fatalf("levels %v", ls)
	}
	// Non-aligned step still terminates exactly at Bits.
	cfg = Config{Bits: 9, StartBits: 4, StepBits: 2, K: 1, Epsilon: 1}
	ls = cfg.levels()
	if ls[len(ls)-1] != 9 {
		t.Fatalf("levels %v", ls)
	}
}

// population builds a heavy-tailed population: the given heavy items get
// heavyShare of the users, the rest spread over the domain.
func population(r *rng.Rand, n, bits int, heavy []int, heavyShare float64) []int {
	domain := 1 << uint(bits)
	items := make([]int, n)
	perHeavy := heavyShare / float64(len(heavy))
	for i := range items {
		u := r.Float64()
		if u < heavyShare {
			items[i] = heavy[int(u/perHeavy)%len(heavy)]
		} else {
			items[i] = r.Intn(domain)
		}
	}
	return items
}

func TestIdentifyFindsHeavyHitters(t *testing.T) {
	const bits, n = 10, 60000
	r := rng.New(7)
	heavy := []int{137, 512, 901}
	items := population(r, n, bits, heavy, 0.5)
	res, err := Identify(r, Config{Bits: bits, K: 3, Epsilon: 2}, items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Fatalf("found %v", res.Items)
	}
	found := map[int]bool{}
	for _, it := range res.Items {
		found[it] = true
	}
	hits := 0
	for _, h := range heavy {
		if found[h] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("found %v, want >= 2 of %v", res.Items, heavy)
	}
	// Frequencies are reported and ordered.
	for i := 1; i < len(res.Frequencies); i++ {
		if res.Frequencies[i] > res.Frequencies[i-1]+1e-9 {
			t.Fatalf("frequencies not sorted: %v", res.Frequencies)
		}
	}
	if res.Levels[len(res.Levels)-1] != bits {
		t.Fatalf("levels %v", res.Levels)
	}
}

// TestIdentifyUnderPromotionAttack: an attacker crafting reports for a
// cold item's prefix at every level forces it into the top-K; the
// SuppressTargets defense (with the suspect known, e.g. from outlier
// detection on the final estimates) demotes it again.
func TestIdentifyUnderPromotionAttack(t *testing.T) {
	const bits, n = 10, 60000
	const fake = 777 // a cold item the attacker promotes
	heavy := []int{137, 512, 901}
	mkItems := func() []int {
		return population(rng.New(7), n, bits, heavy, 0.5)
	}
	attack := func(mr *rng.Rand, m int) func(int, *ldp.OLH) ([]ldp.Report, error) {
		return func(levelBits int, proto *ldp.OLH) ([]ldp.Report, error) {
			prefix := fake >> uint(bits-levelBits)
			reports := make([]ldp.Report, m)
			for i := range reports {
				rep, err := proto.CraftSupport(mr, prefix)
				if err != nil {
					return nil, err
				}
				reports[i] = rep
			}
			return reports, nil
		}
	}
	// Each level group has ~n/levels users; 8% of that is a strong attack.
	cfg := Config{Bits: bits, K: 3, Epsilon: 2}
	groupSize := n / len(cfg.withDefaults().levels())
	m := groupSize / 12

	r := rng.New(8)
	resAttacked, err := Identify(r, cfg, mkItems(), attack(rng.New(9), m))
	if err != nil {
		t.Fatal(err)
	}
	promoted := false
	for _, it := range resAttacked.Items {
		if it == fake {
			promoted = true
		}
	}
	if !promoted {
		t.Fatalf("attack failed to promote %d: top-k %v", fake, resAttacked.Items)
	}

	// With the suspect known, the defense suppresses it.
	eta := float64(m) / float64(groupSize)
	cfg.Defense = SuppressTargets(bits, []int{fake}, eta)
	r = rng.New(8)
	resDefended, err := Identify(r, cfg, mkItems(), attack(rng.New(9), m))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range resDefended.Items {
		if it == fake {
			t.Fatalf("defense failed: %d still in top-k %v", fake, resDefended.Items)
		}
	}
	// And the true heavy hitters are back.
	found := map[int]bool{}
	for _, it := range resDefended.Items {
		found[it] = true
	}
	hits := 0
	for _, h := range heavy {
		if found[h] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("defended top-k %v lost the heavy hitters %v", resDefended.Items, heavy)
	}
}

func TestDefenseContractEnforced(t *testing.T) {
	r := rng.New(10)
	items := population(r, 5000, 8, []int{42}, 0.5)
	cfg := Config{Bits: 8, K: 2, Epsilon: 1,
		Defense: func(_ int, _ []int, _ []float64, _ ldp.Params, _ int64) []float64 {
			return []float64{1} // wrong length
		}}
	if _, err := Identify(r, cfg, items, nil); err == nil {
		t.Fatal("defense contract violation accepted")
	}
}
