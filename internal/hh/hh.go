// Package hh implements heavy-hitter identification over a large domain
// using the prefix extension method (PEM, after Bassily et al. and Wang
// et al.), built on this repository's frequency-oracle substrate. The
// paper motivates defending frequency estimation because it "can serve as
// the building block of more advanced tasks" (§II); this package is that
// advanced task, wired to the same poisoning-recovery machinery.
//
// Users hold items in [0, 2^Bits). The population is split into one group
// per level; group g reports the item's prefix of length StartBits +
// g·StepBits through OLH over the prefix domain. The server walks the
// prefix trie, keeping the CandidateBudget most frequent candidates per
// level and extending them, and returns the K most frequent full-length
// items.
//
// Poisoning: an attacker who promotes a target item at every level drags
// it into the top-K (the frequency-gain attack lifted to prefixes). The
// Defense hook post-processes each level's candidate estimates;
// SuppressTargets implements the partial-knowledge deduction of Eq. 30
// restricted to the level's candidate set.
package hh

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// Config parameterizes identification.
type Config struct {
	// Bits is the item width: the domain is [0, 2^Bits).
	Bits int
	// StartBits is the first level's prefix length (default 4).
	StartBits int
	// StepBits is the prefix growth per level (default 2).
	StepBits int
	// K is the number of heavy hitters to return.
	K int
	// CandidateBudget caps candidates kept per level (default 2K).
	CandidateBudget int
	// Epsilon is the per-user privacy budget (each user reports once).
	Epsilon float64
	// Defense, when non-nil, post-processes each level's candidate
	// frequency estimates before selection. levelBits is the prefix
	// length; candidates[i] corresponds to estimates[i].
	Defense func(levelBits int, candidates []int, estimates []float64, pr ldp.Params, total int64) []float64
}

func (c Config) withDefaults() Config {
	if c.StartBits == 0 {
		c.StartBits = 4
	}
	if c.StepBits == 0 {
		c.StepBits = 2
	}
	if c.CandidateBudget == 0 {
		c.CandidateBudget = 2 * c.K
	}
	return c
}

func (c Config) validate() error {
	if c.Bits < 1 || c.Bits > 24 {
		return fmt.Errorf("hh: bits %d outside [1,24]", c.Bits)
	}
	if c.K < 1 {
		return fmt.Errorf("hh: k %d < 1", c.K)
	}
	if c.StartBits < 1 || c.StartBits > c.Bits {
		return fmt.Errorf("hh: start bits %d outside [1,%d]", c.StartBits, c.Bits)
	}
	if c.StepBits < 1 {
		return fmt.Errorf("hh: step bits %d < 1", c.StepBits)
	}
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) {
		return fmt.Errorf("hh: invalid epsilon %v", c.Epsilon)
	}
	return nil
}

// levels returns the prefix lengths of each round, ending exactly at
// Bits.
func (c Config) levels() []int {
	var out []int
	for pl := c.StartBits; pl < c.Bits; pl += c.StepBits {
		out = append(out, pl)
	}
	return append(out, c.Bits)
}

// Result carries identification output.
type Result struct {
	// Items are the identified heavy hitters, most frequent first.
	Items []int
	// Frequencies are the final-level estimates for Items.
	Frequencies []float64
	// Levels records the prefix length of each round.
	Levels []int
}

// Identify runs PEM over the users' items. maliciousPerLevel, when
// non-nil, is invoked once per level and returns extra attacker-crafted
// reports to inject into that level's group (the poisoning hook used by
// tests and experiments).
func Identify(r *rng.Rand, cfg Config, items []int,
	maliciousPerLevel func(levelBits int, proto *ldp.OLH) ([]ldp.Report, error)) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("hh: nil random generator")
	}
	if len(items) == 0 {
		return nil, errors.New("hh: no users")
	}
	domain := 1 << uint(cfg.Bits)
	for i, it := range items {
		if it < 0 || it >= domain {
			return nil, fmt.Errorf("hh: item %d at index %d outside [0,%d)", it, i, domain)
		}
	}

	levels := cfg.levels()
	// Split users into one group per level.
	groups := make([][]int, len(levels))
	for i, it := range items {
		g := i % len(levels)
		groups[g] = append(groups[g], it)
	}

	// Level 0 candidates: all StartBits-prefixes.
	candidates := make([]int, 1<<uint(cfg.StartBits))
	for i := range candidates {
		candidates[i] = i
	}

	var lastEstimates []float64
	for li, pl := range levels {
		prefixDomain := 1 << uint(pl)
		proto, err := ldp.NewOLH(prefixDomain, cfg.Epsilon)
		if err != nil {
			return nil, err
		}
		// Perturb this group's prefixes.
		reports := make([]ldp.Report, 0, len(groups[li]))
		shift := uint(cfg.Bits - pl)
		for _, it := range groups[li] {
			rep, err := proto.Perturb(r, it>>shift)
			if err != nil {
				return nil, err
			}
			reports = append(reports, rep)
		}
		if maliciousPerLevel != nil {
			mal, err := maliciousPerLevel(pl, proto)
			if err != nil {
				return nil, err
			}
			reports = append(reports, mal...)
		}
		// Count supports for candidates only (PEM's whole point: never
		// enumerate the full prefix domain).
		counts := make([]int64, len(candidates))
		for _, rep := range reports {
			for ci, cand := range candidates {
				if rep.Supports(cand) {
					counts[ci]++
				}
			}
		}
		pr := proto.Params()
		total := int64(len(reports))
		estimates := make([]float64, len(candidates))
		for ci, c := range counts {
			estimates[ci] = (float64(c) - float64(total)*pr.Q) /
				(float64(total) * (pr.P - pr.Q))
		}
		if cfg.Defense != nil {
			estimates = cfg.Defense(pl, candidates, estimates, pr, total)
			if len(estimates) != len(candidates) {
				return nil, errors.New("hh: defense changed the candidate count")
			}
		}

		// Keep the strongest candidates.
		order := make([]int, len(candidates))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ea, eb := estimates[order[a]], estimates[order[b]]
			if ea != eb {
				return ea > eb
			}
			return candidates[order[a]] < candidates[order[b]]
		})
		keep := cfg.CandidateBudget
		if pl == cfg.Bits {
			keep = cfg.K
		}
		if keep > len(order) {
			keep = len(order)
		}
		kept := make([]int, keep)
		keptEst := make([]float64, keep)
		for i := 0; i < keep; i++ {
			kept[i] = candidates[order[i]]
			keptEst[i] = estimates[order[i]]
		}
		if pl == cfg.Bits {
			return &Result{Items: kept, Frequencies: keptEst, Levels: levels}, nil
		}
		// Extend survivors by the next level's additional bits.
		nextPl := levels[li+1]
		ext := nextPl - pl
		next := make([]int, 0, keep<<uint(ext))
		for _, cand := range kept {
			base := cand << uint(ext)
			for e := 0; e < 1<<uint(ext); e++ {
				next = append(next, base|e)
			}
		}
		candidates = next
		lastEstimates = keptEst
	}
	_ = lastEstimates // unreachable: the final level returns above
	return nil, errors.New("hh: no levels executed")
}

// SuppressTargets returns a Defense that deducts the attacker's expected
// per-level gain from suspected target items (Eq. 30's partial-knowledge
// allocation restricted to the candidate set): for a suspected item's
// prefix, subtract eta·(1-q)/(p-q) — the frequency a crafted report
// contributes — and clip all candidates at zero.
func SuppressTargets(bits int, suspects []int, eta float64) func(int, []int, []float64, ldp.Params, int64) []float64 {
	return func(levelBits int, candidates []int, estimates []float64, pr ldp.Params, _ int64) []float64 {
		shift := uint(bits - levelBits)
		suspectPrefix := make(map[int]bool, len(suspects))
		for _, s := range suspects {
			suspectPrefix[s>>shift] = true
		}
		out := make([]float64, len(estimates))
		share := eta * (1 - pr.Q) / (pr.P - pr.Q)
		for i, cand := range candidates {
			v := estimates[i]
			if suspectPrefix[cand] {
				v -= share
			}
			if v < 0 {
				v = 0
			}
			out[i] = v
		}
		return out
	}
}
