package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws of 100", same)
	}
}

func TestNewZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling substreams matched on %d of 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformChiSquare(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]float64, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	exp := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := c - exp
		chi2 += d * d / exp
	}
	// 9 degrees of freedom; 32.9 is far beyond the 0.9999 quantile (~33.7
	// is p≈1e-4); use a generous bound to keep the test stable.
	if chi2 > 40 {
		t.Fatalf("Intn uniformity chi2=%v too large", chi2)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(8)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(4)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(17)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		k := r.Intn(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) length %d", n, k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid element %d in %v", n, k, v, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleCoversUniformly(t *testing.T) {
	r := New(23)
	const n, k, trials = 10, 3, 30000
	counts := make([]float64, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(n, k) {
			counts[v]++
		}
	}
	exp := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(c-exp)/exp > 0.05 {
			t.Fatalf("Sample coverage skewed at %d: %v vs %v", i, c, exp)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %v", mean)
	}
}

func TestUint64nProperty(t *testing.T) {
	r := New(77)
	f := func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw%1000) + 1
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
