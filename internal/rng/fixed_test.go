package rng

import (
	"math"
	"testing"
)

func TestFixedProbEdges(t *testing.T) {
	if FixedProb(0) != 0 || FixedProb(-1) != 0 {
		t.Fatal("non-positive p must map to threshold 0")
	}
	if FixedProb(1) != ^uint64(0) || FixedProb(2) != ^uint64(0) {
		t.Fatal("p >= 1 must map to the saturated threshold")
	}
	// Just below 1: must not overflow the float->uint64 conversion.
	if th := FixedProb(1 - 1e-18); th < ^uint64(0)-(1<<16) {
		t.Fatalf("p≈1 threshold %d implausibly small", th)
	}
	if th := FixedProb(0.5); th != 1<<63 {
		t.Fatalf("p=0.5 threshold %d want %d", th, uint64(1)<<63)
	}
}

func TestBernoulliU64MatchesProbability(t *testing.T) {
	r := New(11)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9} {
		th := FixedProb(p)
		const trials = 200000
		hits := 0
		for i := 0; i < trials; i++ {
			if r.BernoulliU64(th) {
				hits++
			}
		}
		got := float64(hits) / trials
		// 5-sigma binomial bound.
		tol := 5 * math.Sqrt(p*(1-p)/trials)
		if math.Abs(got-p) > tol {
			t.Fatalf("p=%v: empirical %v outside ±%v", p, got, tol)
		}
	}
}

func TestBernoulliU64Degenerate(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.BernoulliU64(0) {
			t.Fatal("threshold 0 returned true")
		}
		if !r.BernoulliU64(^uint64(0)) {
			t.Fatal("saturated threshold returned false")
		}
	}
}

// TestBernoulliU64UniformConsumption: every BernoulliU64 call advances the
// stream exactly once, regardless of threshold, so samplers built on it
// stay draw-aligned across parameter choices.
func TestBernoulliU64UniformConsumption(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		a.BernoulliU64(FixedProb(0.1))
		b.BernoulliU64(^uint64(0))
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("streams diverged: BernoulliU64 consumption depends on threshold")
	}
}

func TestGeometricSkipDistribution(t *testing.T) {
	r := New(7)
	for _, q := range []float64{0.02, 0.1, 0.377} {
		inv := SkipInv(q)
		const trials = 200000
		var sum float64
		for i := 0; i < trials; i++ {
			k := r.GeometricSkip(inv)
			if k < 0 {
				t.Fatalf("q=%v: negative skip %d", q, k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := (1 - q) / q
		// Geometric sd is sqrt(1-q)/q; 6-sigma bound on the mean.
		tol := 6 * math.Sqrt(1-q) / q / math.Sqrt(trials)
		if math.Abs(mean-want) > tol {
			t.Fatalf("q=%v: mean skip %v want %v ± %v", q, mean, want, tol)
		}
	}
}

// TestGeometricSkipMatchesBernoulli: skipping k failures then taking a
// success must reproduce the exact success-position distribution of a
// sequential Bernoulli(q) scan (chi-square over the first few cells).
func TestGeometricSkipMatchesBernoulli(t *testing.T) {
	const q = 0.3
	const trials = 300000
	const cells = 10
	inv := SkipInv(q)
	r := New(5)
	got := make([]float64, cells+1)
	for i := 0; i < trials; i++ {
		k := r.GeometricSkip(inv)
		if k >= cells {
			got[cells]++
		} else {
			got[k]++
		}
	}
	var chi2 float64
	tail := float64(trials)
	for k := 0; k < cells; k++ {
		exp := float64(trials) * math.Pow(1-q, float64(k)) * q
		d := got[k] - exp
		chi2 += d * d / exp
		tail -= exp
	}
	d := got[cells] - tail
	chi2 += d * d / tail
	// cells dof; generous 6-sigma bound.
	limit := float64(cells) + 6*math.Sqrt(2*float64(cells))
	if chi2 > limit {
		t.Fatalf("chi2 %v > %v", chi2, limit)
	}
}

func BenchmarkBernoulliFloat(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.377) {
			n++
		}
	}
	_ = n
}

func BenchmarkBernoulliU64(b *testing.B) {
	r := New(1)
	th := FixedProb(0.377)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.BernoulliU64(th) {
			n++
		}
	}
	_ = n
}

func BenchmarkGeometricSkip(b *testing.B) {
	r := New(1)
	inv := SkipInv(0.02)
	var s int64
	for i := 0; i < b.N; i++ {
		s += r.GeometricSkip(inv)
	}
	_ = s
}
