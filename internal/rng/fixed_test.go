package rng

import (
	"math"
	"testing"
)

func TestFixedProbEdges(t *testing.T) {
	if FixedProb(0) != 0 || FixedProb(-1) != 0 {
		t.Fatal("non-positive p must map to threshold 0")
	}
	if FixedProb(1) != ^uint64(0) || FixedProb(2) != ^uint64(0) {
		t.Fatal("p >= 1 must map to the saturated threshold")
	}
	// Just below 1: must not overflow the float->uint64 conversion.
	if th := FixedProb(1 - 1e-18); th < ^uint64(0)-(1<<16) {
		t.Fatalf("p≈1 threshold %d implausibly small", th)
	}
	if th := FixedProb(0.5); th != 1<<63 {
		t.Fatalf("p=0.5 threshold %d want %d", th, uint64(1)<<63)
	}
}

func TestBernoulliU64MatchesProbability(t *testing.T) {
	r := New(11)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9} {
		th := FixedProb(p)
		const trials = 200000
		hits := 0
		for i := 0; i < trials; i++ {
			if r.BernoulliU64(th) {
				hits++
			}
		}
		got := float64(hits) / trials
		// 5-sigma binomial bound.
		tol := 5 * math.Sqrt(p*(1-p)/trials)
		if math.Abs(got-p) > tol {
			t.Fatalf("p=%v: empirical %v outside ±%v", p, got, tol)
		}
	}
}

func TestBernoulliU64Degenerate(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.BernoulliU64(0) {
			t.Fatal("threshold 0 returned true")
		}
		if !r.BernoulliU64(^uint64(0)) {
			t.Fatal("saturated threshold returned false")
		}
	}
}

// TestBernoulliU64UniformConsumption: every BernoulliU64 call advances the
// stream exactly once, regardless of threshold, so samplers built on it
// stay draw-aligned across parameter choices.
func TestBernoulliU64UniformConsumption(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		a.BernoulliU64(FixedProb(0.1))
		b.BernoulliU64(^uint64(0))
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("streams diverged: BernoulliU64 consumption depends on threshold")
	}
}

func TestGeometricSkipDistribution(t *testing.T) {
	r := New(7)
	for _, q := range []float64{0.02, 0.1, 0.377} {
		inv := SkipInv(q)
		const trials = 200000
		var sum float64
		for i := 0; i < trials; i++ {
			k := r.GeometricSkip(inv)
			if k < 0 {
				t.Fatalf("q=%v: negative skip %d", q, k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := (1 - q) / q
		// Geometric sd is sqrt(1-q)/q; 6-sigma bound on the mean.
		tol := 6 * math.Sqrt(1-q) / q / math.Sqrt(trials)
		if math.Abs(mean-want) > tol {
			t.Fatalf("q=%v: mean skip %v want %v ± %v", q, mean, want, tol)
		}
	}
}

// TestGeometricSkipMatchesBernoulli: skipping k failures then taking a
// success must reproduce the exact success-position distribution of a
// sequential Bernoulli(q) scan (chi-square over the first few cells).
func TestGeometricSkipMatchesBernoulli(t *testing.T) {
	const q = 0.3
	const trials = 300000
	const cells = 10
	inv := SkipInv(q)
	r := New(5)
	got := make([]float64, cells+1)
	for i := 0; i < trials; i++ {
		k := r.GeometricSkip(inv)
		if k >= cells {
			got[cells]++
		} else {
			got[k]++
		}
	}
	var chi2 float64
	tail := float64(trials)
	for k := 0; k < cells; k++ {
		exp := float64(trials) * math.Pow(1-q, float64(k)) * q
		d := got[k] - exp
		chi2 += d * d / exp
		tail -= exp
	}
	d := got[cells] - tail
	chi2 += d * d / tail
	// cells dof; generous 6-sigma bound.
	limit := float64(cells) + 6*math.Sqrt(2*float64(cells))
	if chi2 > limit {
		t.Fatalf("chi2 %v > %v", chi2, limit)
	}
}

func BenchmarkBernoulliFloat(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.377) {
			n++
		}
	}
	_ = n
}

func BenchmarkBernoulliU64(b *testing.B) {
	r := New(1)
	th := FixedProb(0.377)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.BernoulliU64(th) {
			n++
		}
	}
	_ = n
}

func BenchmarkGeometricSkip(b *testing.B) {
	r := New(1)
	inv := SkipInv(0.02)
	var s int64
	for i := 0; i < b.N; i++ {
		s += r.GeometricSkip(inv)
	}
	_ = s
}

// TestFixedProbNaN: NaN must clamp to the impossible threshold, not fall
// through to the implementation-dependent float->uint64 conversion
// (which on amd64 yields 1<<63 — a coin flip masquerading as a
// probability). Regression test for the audit-tier sampling-math sweep.
func TestFixedProbNaN(t *testing.T) {
	if th := FixedProb(math.NaN()); th != 0 {
		t.Fatalf("FixedProb(NaN) = %d want 0", th)
	}
}

// TestFixedProbExactThresholds pins the fixed-point conversion contract:
// scaling by 2^64 is exact (pure exponent shift), so for p >= 2^-11 the
// threshold reproduces p with zero error, and below that the rounding
// error is at most half an output ulp (2^-65 in probability).
func TestFixedProbExactThresholds(t *testing.T) {
	exact := []struct {
		p  float64
		th uint64
	}{
		{0.5, 1 << 63},
		{0.25, 1 << 62},
		{0.75, 3 << 62},
		{1.0 / 1024, 1 << 54},
		// Largest p below 1: 1-2^-53 scales to 2^64-2^11 exactly.
		{1 - 0x1p-53, ^uint64(0) - (1 << 11) + 1},
		// Smallest representable regime: p*2^64 rounds to the nearest
		// integer, half away from zero.
		{0x1p-64, 1},
		{0x1p-65, 1},
		{0x1p-66, 0},
		{5e-324, 0}, // subnormal underflows the threshold entirely
	}
	for _, c := range exact {
		if th := FixedProb(c.p); th != c.th {
			t.Fatalf("FixedProb(%g) = %d want %d", c.p, th, c.th)
		}
	}
	// p >= 2^-11: threshold/2^64 must equal p bit-for-bit. float64(th) is
	// exact here because th carries at most 53 significant bits (it is
	// p's mantissa shifted).
	r := New(99)
	for i := 0; i < 1000; i++ {
		p := math.Ldexp(r.Float64()+0.001, -int(r.Uint64n(11)))
		if p <= 0 || p >= 1 || p < 0x1p-11 {
			continue
		}
		th := FixedProb(p)
		if got := float64(th) * 0x1p-64; got != p {
			t.Fatalf("FixedProb(%v) realizes %v (threshold %d): not exact", p, got, th)
		}
	}
	// Below 2^-11 the absolute rounding error must stay within half an
	// output ulp.
	for _, p := range []float64{0x1p-12, 3e-5, 7e-9, 1e-15, 0x1.5p-40} {
		th := FixedProb(p)
		if d := math.Abs(float64(th) - p*0x1p64); d > 0.5 {
			t.Fatalf("FixedProb(%v) = %d: |th - p*2^64| = %v > 0.5", p, th, d)
		}
	}
}

// TestGeometricSkipZeroDrawClamped: the u == 0 draw must behave like the
// smallest positive draw — a large finite skip — not like "no success
// ever". Pre-fix the zero draw returned MaxInt64 even at q = 1, where
// every skip must be 0.
func TestGeometricSkipZeroDrawClamped(t *testing.T) {
	inv := SkipInv(0.5)
	got := skipFromUniform(0, inv)
	want := skipFromUniform(geometricSkipMinU, inv)
	if got != want {
		t.Fatalf("zero draw skips %d, smallest positive draw skips %d", got, want)
	}
	if got == math.MaxInt64 {
		t.Fatalf("zero draw at q=0.5 saturated to MaxInt64")
	}
	// q -> 1: success is certain, so the skip must be 0 for every draw,
	// including the clamped zero draw.
	if s := skipFromUniform(0, SkipInv(1)); s != 0 {
		t.Fatalf("zero draw at q=1 skipped %d want 0", s)
	}
	if s := skipFromUniform(0.999, SkipInv(1)); s != 0 {
		t.Fatalf("draw 0.999 at q=1 skipped %d want 0", s)
	}
}

// TestGeometricSkipSaturates: tiny q (huge SkipInv magnitude) must
// saturate at MaxInt64 without overflowing the float->int64 conversion,
// for ordinary, tiny, and zero draws; q = 0 means no success ever.
func TestGeometricSkipSaturates(t *testing.T) {
	for _, q := range []float64{1e-300, 1e-30} {
		inv := SkipInv(q)
		for _, u := range []float64{0, geometricSkipMinU, 0.5, 0.999999} {
			s := skipFromUniform(u, inv)
			if s < 0 {
				t.Fatalf("q=%g u=%g: negative skip %d (conversion overflow)", q, u, s)
			}
			if u <= 0.5 && s != math.MaxInt64 {
				t.Fatalf("q=%g u=%g: skip %d want MaxInt64 saturation", q, u, s)
			}
		}
	}
	if s := skipFromUniform(0.5, SkipInv(0)); s != math.MaxInt64 {
		t.Fatalf("q=0 skip %d want MaxInt64 (no success ever)", s)
	}
	// Just inside the representable range: ln(0.5)*1e19 ~ 6.9e18 fits in
	// int64, so it must come back finite and non-negative, not clamped.
	if s := skipFromUniform(0.5, SkipInv(1e-19)); s <= 0 || s == math.MaxInt64 {
		t.Fatalf("q=1e-19 u=0.5: skip %d want large finite", s)
	}
}

// TestGeometricSkipUnchangedOnPositiveDraws pins that the clamp did not
// touch the u > 0 mapping: a seeded GeometricSkip stream must replay
// bit-identically through the inversion formula on a mirrored generator.
func TestGeometricSkipUnchangedOnPositiveDraws(t *testing.T) {
	for _, q := range []float64{0.02, 0.1, 0.377} {
		inv := SkipInv(q)
		a, b := New(17), New(17)
		for i := 0; i < 10000; i++ {
			got := a.GeometricSkip(inv)
			u := b.Float64()
			if u == 0 {
				continue // the clamped cell, covered above
			}
			want := int64(math.Log(u) * inv)
			if got != want {
				t.Fatalf("q=%v draw %d: skip %d want %d", q, i, got, want)
			}
		}
	}
}
