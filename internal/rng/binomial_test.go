package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialDegenerate(t *testing.T) {
	r := New(1)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0,.5) = %d", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Fatalf("Binomial(100,0) = %d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Fatalf("Binomial(100,1) = %d", got)
	}
	if got := r.Binomial(-5, 0.5); got != 0 {
		t.Fatalf("Binomial(-5,.5) = %d", got)
	}
}

func TestBinomialRange(t *testing.T) {
	r := New(2)
	cases := []struct {
		n int64
		p float64
	}{
		{1, 0.5}, {10, 0.01}, {10, 0.99}, {1000, 0.3},
		{100000, 0.001}, {1000000, 0.4}, {5, 0.5},
	}
	for _, c := range cases {
		for i := 0; i < 500; i++ {
			k := r.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, k)
			}
		}
	}
}

// momentCheck verifies empirical mean and variance against the binomial's
// theoretical values with tolerance scaled by the standard error.
func momentCheck(t *testing.T, r *Rand, n int64, p float64, trials int) {
	t.Helper()
	mean := float64(n) * p
	variance := mean * (1 - p)
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		k := float64(r.Binomial(n, p))
		sum += k
		sum2 += k * k
	}
	em := sum / float64(trials)
	ev := sum2/float64(trials) - em*em
	seMean := math.Sqrt(variance / float64(trials))
	if math.Abs(em-mean) > 6*seMean+1e-9 {
		t.Fatalf("Binomial(%d,%v) mean %v want %v (±%v)", n, p, em, mean, 6*seMean)
	}
	if variance > 0 && math.Abs(ev-variance)/variance > 0.15 {
		t.Fatalf("Binomial(%d,%v) variance %v want %v", n, p, ev, variance)
	}
}

func TestBinomialMomentsSmall(t *testing.T) {
	momentCheck(t, New(3), 20, 0.25, 50000)
}

func TestBinomialMomentsInversionRegime(t *testing.T) {
	momentCheck(t, New(4), 500, 0.05, 30000)
}

func TestBinomialMomentsNormalRegime(t *testing.T) {
	momentCheck(t, New(5), 400000, 0.4, 20000)
}

func TestBinomialMomentsHighP(t *testing.T) {
	momentCheck(t, New(6), 1000, 0.9, 30000)
}

func TestBinomialExactDistributionSmall(t *testing.T) {
	// Compare the full empirical pmf against the exact pmf for a small case
	// that always uses the exact inversion path.
	r := New(7)
	const n, p, trials = 8, 0.3, 200000
	counts := make([]float64, n+1)
	for i := 0; i < trials; i++ {
		counts[r.Binomial(n, p)]++
	}
	// Exact pmf.
	pmf := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		pmf[k] = float64(binomCoeff(n, k)) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	var chi2 float64
	for k := 0; k <= n; k++ {
		exp := pmf[k] * trials
		if exp < 5 {
			continue
		}
		d := counts[k] - exp
		chi2 += d * d / exp
	}
	if chi2 > 40 { // ~8 dof, generous
		t.Fatalf("binomial pmf chi2 = %v", chi2)
	}
}

func binomCoeff(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	c := int64(1)
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}

func TestMultinomialSumsToN(t *testing.T) {
	r := New(8)
	f := func(seed uint64, sizes uint16) bool {
		rr := New(seed)
		d := int(sizes%20) + 1
		probs := make([]float64, d)
		for i := range probs {
			probs[i] = rr.Float64()
		}
		n := int64(rr.Intn(100000))
		out := r.Multinomial(n, probs)
		var sum int64
		for _, c := range out {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultinomialZeroProbGetsZero(t *testing.T) {
	r := New(9)
	probs := []float64{0.5, 0, 0.5, 0}
	out := r.Multinomial(10000, probs)
	if out[1] != 0 || out[3] != 0 {
		t.Fatalf("zero-probability cells got counts: %v", out)
	}
	if out[0]+out[2] != 10000 {
		t.Fatalf("counts do not sum: %v", out)
	}
}

func TestMultinomialProportions(t *testing.T) {
	r := New(10)
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	const n = 1000000
	out := r.Multinomial(n, probs)
	for i, p := range probs {
		got := float64(out[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("cell %d proportion %v want %v", i, got, p)
		}
	}
}

func TestMultinomialEmptyAndZeroMass(t *testing.T) {
	r := New(11)
	if out := r.Multinomial(10, nil); len(out) != 0 {
		t.Fatalf("nil probs gave %v", out)
	}
	out := r.Multinomial(10, []float64{0, 0})
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("zero-mass distribution gave %v", out)
	}
}

func BenchmarkBinomialSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Binomial(100, 0.1)
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Binomial(500000, 0.4)
	}
}
