package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAliasRejectsInvalid(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{-1, 2},
		{math.NaN()},
		{math.Inf(1)},
	}
	for i, ws := range cases {
		if _, err := NewAlias(ws); err == nil {
			t.Fatalf("case %d: expected error for weights %v", i, ws)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 100; i++ {
		if a.Pick(r) != 0 {
			t.Fatal("single-outcome alias picked nonzero")
		}
	}
}

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 0, 10}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	r := New(2)
	const draws = 500000
	counts := a.PickMany(r, draws)
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("outcome %d: empirical %v want %v", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverPicked(t *testing.T) {
	a, err := NewAlias([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := New(3)
	for i := 0; i < 100000; i++ {
		if a.Pick(r) == 1 {
			t.Fatal("picked zero-weight outcome")
		}
	}
}

func TestAliasPickInRangeProperty(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz%50) + 1
		rr := New(seed)
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = rr.Float64() + 0.001
		}
		a, err := NewAlias(ws)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			v := a.Pick(rr)
			if v < 0 || v >= n {
				return false
			}
		}
		return a.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPMFValid(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.5, 2} {
		pmf, err := ZipfPMF(100, s)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		prev := math.Inf(1)
		for k, p := range pmf {
			if p < 0 || p > 1 {
				t.Fatalf("s=%v: pmf[%d]=%v out of range", s, k, p)
			}
			if p > prev+1e-15 {
				t.Fatalf("s=%v: pmf not non-increasing at %d", s, k)
			}
			prev = p
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: pmf sums to %v", s, sum)
		}
	}
}

func TestZipfPMFErrors(t *testing.T) {
	if _, err := ZipfPMF(0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := ZipfPMF(10, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
	if _, err := ZipfPMF(10, math.NaN()); err == nil {
		t.Fatal("NaN exponent accepted")
	}
}

func TestZipfSamplerSkew(t *testing.T) {
	z, err := NewZipf(50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := New(5)
	counts := make([]int, 50)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Pick(r)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[40] {
		t.Fatalf("zipf sampler not skewed: c0=%d c10=%d c40=%d",
			counts[0], counts[10], counts[40])
	}
	pmf := z.PMF()
	got0 := float64(counts[0]) / draws
	if math.Abs(got0-pmf[0]) > 0.01 {
		t.Fatalf("rank-0 empirical %v want %v", got0, pmf[0])
	}
}

func BenchmarkAliasPick(b *testing.B) {
	ws := make([]float64, 1000)
	rr := New(1)
	for i := range ws {
		ws[i] = rr.Float64()
	}
	a, _ := NewAlias(ws)
	r := New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Pick(r)
	}
}
