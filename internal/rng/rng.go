// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distribution samplers used throughout the simulator.
//
// The package intentionally does not use math/rand: experiment results must
// be bit-for-bit reproducible across Go releases, and the harness needs
// substreams (independent generators derived from a parent seed) so that
// trials can run in parallel without sharing state. The generator is
// xoshiro256** seeded through splitmix64, the combination recommended by
// the xoshiro authors.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random generator. It is NOT safe for
// concurrent use; derive one generator per goroutine with Split.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is used for seeding and for the keyed hash in package hashx.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets r in place to the state New(seed) would produce, letting
// steady-state loops restart a stream without allocating a generator.
func (r *Rand) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro256** must not be seeded with the all-zero state; splitmix64
	// cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split returns a new generator whose stream is independent of r's
// (derived from r's next output), advancing r once. Substreams derived
// from distinct draws are statistically independent for simulation
// purposes.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0; callers
// control n so this indicates a programming error, matching math/rand.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n=0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// FixedProb converts a probability to the 64-bit fixed-point threshold
// consumed by BernoulliU64. Scaling by 2^64 only shifts the exponent, so
// p*2^64 is computed exactly; rounding it to the nearest integer leaves
// the realized probability within 2^-65 of p, and exactly equal to p
// whenever p >= 2^-11 (where p's own ulp is at least 2^-64 and the
// product is already integral). That is far below the 2^-53 resolution
// of the Float64-based Bernoulli. Out-of-range p — including NaN, which
// would otherwise reach the implementation-dependent float-to-uint64
// conversion and produce a platform-specific garbage threshold — clamps
// to the degenerate thresholds.
func FixedProb(p float64) uint64 {
	if p <= 0 || math.IsNaN(p) {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	// p * 2^64 computed as p * 2^63 * 2 to stay inside float64 range.
	scaled := math.Round(p * (1 << 63) * 2)
	if scaled >= math.MaxUint64 { // 2^64 would overflow the conversion
		return ^uint64(0)
	}
	return uint64(scaled)
}

// BernoulliU64 returns true with probability threshold/2^64 using a single
// uint64 draw and one compare — no float conversion. threshold is
// precomputed once with FixedProb and reused across draws, which is what
// makes the per-bit cost of dense unary perturbation one generator step.
// A threshold of ^uint64(0) (FixedProb of p>=1) is treated as certainty.
func (r *Rand) BernoulliU64(threshold uint64) bool {
	if threshold == ^uint64(0) {
		r.Uint64() // keep stream consumption uniform across thresholds
		return true
	}
	return r.Uint64() < threshold
}

// SkipInv precomputes the constant 1/ln(1-q) consumed by GeometricSkip
// for success probability q in (0, 1). Callers hoist it out of sampling
// loops (one log at construction instead of two per skip).
func SkipInv(q float64) float64 {
	return 1 / math.Log1p(-q)
}

// GeometricSkip samples the number of consecutive failures before the
// first success of a Bernoulli(q) sequence — Geometric(q) on {0, 1, ...}
// — using the inversion floor(ln(U)/ln(1-q)). invLog1q is SkipInv(q),
// hoisted by the caller. One uniform draw and one log per skip, so
// generating only the successes of a length-d Bernoulli(q) sequence costs
// O(d·q) expected work instead of d draws: the geometric skip-sampling
// behind sparse unary perturbation.
//
// A uniform draw of exactly 0 (probability 2^-53 per skip) is clamped to
// the smallest positive draw before the log: the discrete draw 0 stands
// for the interval [0, 2^-53), whose inversion image is a large but
// finite skip, and clamping keeps the q=1 degenerate correct (skip 0)
// instead of sending math.Log(0) = -Inf through the computation and
// reporting "no success ever". The result saturates at math.MaxInt64
// when the skip exceeds the int64 range (tiny q, tiny draw); callers
// compare against a domain bound anyway.
func (r *Rand) GeometricSkip(invLog1q float64) int64 {
	return skipFromUniform(r.Float64(), invLog1q)
}

// geometricSkipMinU is the smallest positive value Float64 returns; the
// zero draw clamps here.
const geometricSkipMinU = 0x1p-53

// skipFromUniform is GeometricSkip's inversion core on an explicit
// uniform draw, split out so edge-case draws (0, subnormal-adjacent) are
// testable without steering the generator.
func skipFromUniform(u, invLog1q float64) int64 {
	if u < geometricSkipMinU {
		u = geometricSkipMinU
	}
	k := math.Log(u) * invLog1q
	// The saturating branch also catches NaN and the q=0 degenerate
	// (SkipInv +Inf times a negative log gives -Inf), where "no success
	// ever" is the right answer. The comparison constant converts to
	// 2^63 exactly, so every k it admits converts to int64 in range.
	if !(k >= 0) || k >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(k)
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. The method consumes a variable number of uniforms but is exact,
// branch-light, and has no lookup tables to validate.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Exp returns an exponential variate with rate 1.
func (r *Rand) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Sample returns k distinct indices drawn uniformly without replacement
// from [0, n) in selection order. It panics if k > n (caller bug).
func (r *Rand) Sample(n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("rng: Sample k=%d > n=%d", k, n))
	}
	// Floyd's algorithm: O(k) memory, k map inserts.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
