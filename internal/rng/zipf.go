package rng

import (
	"errors"
	"fmt"
	"math"
)

// ZipfPMF returns the probability mass function of a bounded Zipf
// distribution over ranks 1..d: P(rank k) ∝ 1/k^s. s may be any
// non-negative exponent (s=0 is uniform).
func ZipfPMF(d int, s float64) ([]float64, error) {
	if d <= 0 {
		return nil, errors.New("rng: ZipfPMF requires d > 0")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("rng: ZipfPMF invalid exponent %g", s)
	}
	pmf := make([]float64, d)
	var z float64
	for k := 1; k <= d; k++ {
		w := math.Pow(float64(k), -s)
		pmf[k-1] = w
		z += w
	}
	for i := range pmf {
		pmf[i] /= z
	}
	return pmf, nil
}

// Zipf is a bounded Zipf sampler over {0, ..., d-1} built on an alias
// table (O(1) per draw after O(d) setup).
type Zipf struct {
	alias *Alias
	pmf   []float64
}

// NewZipf constructs a sampler for ranks 0..d-1 with exponent s.
func NewZipf(d int, s float64) (*Zipf, error) {
	pmf, err := ZipfPMF(d, s)
	if err != nil {
		return nil, err
	}
	a, err := NewAlias(pmf)
	if err != nil {
		return nil, err
	}
	return &Zipf{alias: a, pmf: pmf}, nil
}

// Pick draws one rank in [0, d).
func (z *Zipf) Pick(r *Rand) int { return z.alias.Pick(r) }

// PMF returns the underlying probability mass function (do not mutate).
func (z *Zipf) PMF() []float64 { return z.pmf }
