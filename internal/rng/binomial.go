package rng

import (
	"math"
)

// binomialInversionCutoff bounds the expected work of the inversion
// sampler (expected iterations ~= n*p). Above it we switch to a
// moment-matched normal approximation whose relative error on mean and
// variance is exact and whose distributional error is negligible for the
// regimes the simulator uses (n*p*(1-p) > ~100).
const binomialInversionCutoff = 64.0

// Binomial samples from Binomial(n, p).
//
// Strategy:
//   - degenerate p handled directly;
//   - p > 1/2 sampled via the complement to keep n*p small;
//   - small n*p: exact sequential inversion (geometric-free, O(n*p));
//   - large n*p: normal approximation with continuity correction, clamped
//     to [0, n].
//
// The approximation branch trades exactness for O(1) sampling; the paper's
// metrics (MSE over d items averaged over trials) are insensitive to the
// O(1/sqrt(npq)) distributional error, and tests verify mean/variance.
func (r *Rand) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	np := float64(n) * p
	if np <= binomialInversionCutoff {
		return r.binomialInversion(n, p)
	}
	mean := np
	sd := math.Sqrt(np * (1 - p))
	k := math.Round(mean + sd*r.NormFloat64())
	if k < 0 {
		k = 0
	}
	if k > float64(n) {
		k = float64(n)
	}
	return int64(k)
}

// binomialInversion samples Binomial(n,p) by inverting the CDF with the
// recurrence P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p). Exact; requires
// p <= 1/2 and modest n*p.
func (r *Rand) binomialInversion(n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	// P(0) = q^n computed in log space to avoid underflow for large n.
	logP0 := float64(n) * math.Log(q)
	if logP0 < -700 {
		// q^n underflows float64; n*p is large enough that the caller's
		// cutoff should have routed to the normal branch. Fall back to it.
		mean := float64(n) * p
		sd := math.Sqrt(mean * q)
		k := math.Round(mean + sd*r.NormFloat64())
		if k < 0 {
			k = 0
		}
		if k > float64(n) {
			k = float64(n)
		}
		return int64(k)
	}
	prob := math.Exp(logP0)
	cdf := prob
	u := r.Float64()
	var k int64
	for u > cdf && k < n {
		prob *= s * float64(n-k) / float64(k+1)
		cdf += prob
		k++
		if prob == 0 { // numeric tail exhaustion
			break
		}
	}
	return k
}

// Multinomial distributes n trials over the probability vector probs using
// the conditional-binomial method: each component is Binomial with the
// remaining count and renormalized probability. The result sums to n
// exactly. probs need not be normalized; non-positive entries get zero.
func (r *Rand) Multinomial(n int64, probs []float64) []int64 {
	out := make([]int64, len(probs))
	var total float64
	for _, p := range probs {
		if p > 0 {
			total += p
		}
	}
	if total <= 0 || n <= 0 {
		return out
	}
	remainingP := total
	remainingN := n
	for i, p := range probs {
		if remainingN == 0 {
			break
		}
		if p <= 0 {
			continue
		}
		if p >= remainingP {
			out[i] = remainingN
			remainingN = 0
			break
		}
		k := r.Binomial(remainingN, p/remainingP)
		out[i] = k
		remainingN -= k
		remainingP -= p
	}
	// Assign any residual count (possible only through floating-point
	// drift in remainingP) to the last positive component.
	if remainingN > 0 {
		for i := len(probs) - 1; i >= 0; i-- {
			if probs[i] > 0 {
				out[i] += remainingN
				break
			}
		}
	}
	return out
}
