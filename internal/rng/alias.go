package rng

import (
	"errors"
	"fmt"
)

// Alias is a Vose alias table for O(1) sampling from a fixed discrete
// distribution over {0, ..., n-1}. Construction is O(n).
//
// The zero value is not usable; build with NewAlias. An Alias is immutable
// after construction and safe for concurrent Pick calls with distinct
// generators.
type Alias struct {
	prob  []float64 // acceptance probability per column
	alias []int32   // fallback outcome per column
	n     int
}

// ErrEmptyDistribution is returned when the weight vector has no positive
// mass.
var ErrEmptyDistribution = errors.New("rng: distribution has no positive mass")

// NewAlias builds an alias table from non-negative weights (they need not
// be normalized). Negative, NaN or Inf weights are rejected.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrEmptyDistribution
	}
	var total float64
	for i, w := range weights {
		if w < 0 || w != w || w > 1e300 {
			return nil, fmt.Errorf("rng: invalid weight %g at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, ErrEmptyDistribution
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		n:     n,
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]

		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = g
	}
	// Numerical drift can leave residues in small; they are ~1.
	for _, l := range small {
		a.prob[l] = 1
		a.alias[l] = l
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return a.n }

// Pick draws one outcome.
func (a *Alias) Pick(r *Rand) int {
	i := r.Intn(a.n)
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// PickMany draws k outcomes and returns their counts per outcome.
func (a *Alias) PickMany(r *Rand, k int) []int64 {
	counts := make([]int64, a.n)
	for i := 0; i < k; i++ {
		counts[a.Pick(r)]++
	}
	return counts
}
