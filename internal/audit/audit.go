// Package audit empirically certifies the privacy and robustness claims
// the rest of the repository makes analytically. The privacy auditor
// replays a protocol's real client paths — itemwise Perturb, the
// PerturbAllInto bulk arena path, and the BatchPerturb count-level
// path — over a pair of neighboring inputs and measures how well an
// adversary can distinguish them, reporting an empirical privacy budget
// eps_emp with exact Clopper-Pearson confidence bounds. The recovery
// auditor (recovery.go) replays the streamed MGA scenario across an
// attacker-strength grid and bounds the rate at which the recovery
// pipeline's error guarantees are violated.
//
// The methodology follows the lower-bound convention of the LDP-Audit
// line of work: eps_emp is a statistically certified LOWER bound on the
// true distinguishing power, so for a correctly implemented ε-LDP
// mechanism eps_emp <= ε holds with the configured confidence, and
// eps_emp > ε is a certified privacy violation, not sampling noise.
package audit

import (
	"fmt"
	"math"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

// Path selects which client code path the auditor drives.
type Path int

// The three auditable report paths.
const (
	// PathItemwise calls Protocol.Perturb once per user.
	PathItemwise Path = iota
	// PathBulk calls ldp.PerturbAllInto over a population arena.
	PathBulk
	// PathCount calls BatchPerturber.BatchPerturb for a single user and
	// observes the support-count vector — the aggregation-side view.
	PathCount
)

// AllPaths lists the auditable paths in display order.
var AllPaths = []Path{PathItemwise, PathBulk, PathCount}

// String returns the path label used in reports.
func (p Path) String() string {
	switch p {
	case PathItemwise:
		return "itemwise"
	case PathBulk:
		return "bulk"
	case PathCount:
		return "count"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// ParsePath maps a label back to a Path.
func ParsePath(s string) (Path, error) {
	for _, p := range AllPaths {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("audit: unknown path %q", s)
}

// Protocols lists the auditable protocol names. SUE rides along with the
// paper's three because it shares the unary sampler with OUE and the
// audit is how we prove the shared path leaks nothing extra.
var Protocols = []string{"GRR", "OUE", "SUE", "OLH"}

// BuildProtocol constructs a named protocol over domain d at budget eps.
func BuildProtocol(name string, d int, eps float64) (ldp.Protocol, error) {
	switch name {
	case "GRR":
		return ldp.NewGRR(d, eps)
	case "OUE":
		return ldp.NewOUE(d, eps)
	case "SUE":
		return ldp.NewSUE(d, eps)
	case "OLH":
		return ldp.NewOLH(d, eps)
	default:
		return nil, fmt.Errorf("audit: unknown protocol %q", name)
	}
}

// Config parameterizes one privacy audit.
type Config struct {
	// Protocol names the mechanism under audit (see Protocols).
	Protocol string
	// Epsilon is the claimed privacy budget.
	Epsilon float64
	// Domain is the item-domain size.
	Domain int
	// Trials is the number of reports observed per neighboring input per
	// path.
	Trials int64
	// Confidence is the Clopper-Pearson confidence level for every
	// interval (default 0.99).
	Confidence float64
	// Slack is the gate allowance: a path passes iff
	// EpsEmp <= Epsilon + Slack.
	Slack float64
	// Seed drives the audit deterministically.
	Seed uint64
	// V0 and V1 are the neighboring inputs (defaults 0 and 1).
	V0, V1 int
	// Paths restricts the audit to a subset of AllPaths (nil: all).
	Paths []Path
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 100000
	}
	if c.Confidence == 0 {
		c.Confidence = 0.99
	}
	if c.Domain == 0 {
		c.Domain = 16
	}
	if c.V0 == 0 && c.V1 == 0 {
		c.V1 = 1
	}
	if len(c.Paths) == 0 {
		c.Paths = AllPaths
	}
	return c
}

func (c Config) validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("audit: %d trials", c.Trials)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("audit: confidence %v outside (0,1)", c.Confidence)
	}
	if c.V0 == c.V1 {
		return fmt.Errorf("audit: neighboring inputs are both %d", c.V0)
	}
	if c.V0 < 0 || c.V0 >= c.Domain || c.V1 < 0 || c.V1 >= c.Domain {
		return fmt.Errorf("audit: inputs (%d,%d) outside domain %d", c.V0, c.V1, c.Domain)
	}
	return nil
}

// Event is one cell of the support-projection distinguisher: the counts
// of reports landing in the event under each neighboring input.
type Event struct {
	// Name labels the event by its (Supports(v0), Supports(v1)) pair.
	Name string `json:"name"`
	// CountV0 and CountV1 are occurrences under input v0 resp. v1.
	CountV0 int64 `json:"count_v0"`
	CountV1 int64 `json:"count_v1"`
}

// Result is the audit verdict for one protocol x path cell.
type Result struct {
	Protocol string  `json:"protocol"`
	Path     string  `json:"path"`
	Epsilon  float64 `json:"epsilon"`
	Trials   int64   `json:"trials"`
	// Events are the four distinguisher cells.
	Events [4]Event `json:"events"`
	// EpsEmp is the certified empirical budget: the Clopper-Pearson
	// lower bound on the best likelihood ratio any event achieves, i.e.
	// with the configured confidence the mechanism's true budget is at
	// least EpsEmp.
	EpsEmp float64 `json:"eps_emp"`
	// EpsPoint is the plug-in point estimate of the same quantity.
	EpsPoint float64 `json:"eps_point"`
	// EpsHi is the optimistic upper end ln(CP_hi/CP_lo) over events both
	// inputs reached; EpsHiUnbounded marks that no event overlapped (the
	// distinguisher separated the inputs outright) and EpsHi is
	// meaningless.
	EpsHi          float64 `json:"eps_hi"`
	EpsHiUnbounded bool    `json:"eps_hi_unbounded,omitempty"`
	// MaxEvent names the event and direction realizing EpsEmp.
	MaxEvent string `json:"max_event"`
	// Pass is the gate verdict: EpsEmp <= Epsilon + Slack.
	Pass bool `json:"pass"`
}

// Verdict renders the gate outcome for logs.
func (r Result) Verdict() string {
	if r.Pass {
		return "PASS"
	}
	return fmt.Sprintf("VIOLATION at event %s", r.MaxEvent)
}

var eventNames = [4]string{"(1,1)", "(1,0)", "(0,1)", "(0,0)"}

// eventIndex projects a report onto the four (Supports(v0), Supports(v1))
// cells.
func eventIndex(s0, s1 bool) int {
	switch {
	case s0 && s1:
		return 0
	case s0:
		return 1
	case s1:
		return 2
	default:
		return 3
	}
}

// Run audits every requested path of the configured protocol and returns
// one Result per path.
func Run(cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	proto, err := BuildProtocol(cfg.Protocol, cfg.Domain, cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(cfg.Paths))
	for _, path := range cfg.Paths {
		res, err := auditPath(proto, path, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// auditPath observes cfg.Trials reports per neighboring input through
// one client path and certifies the distinguisher's advantage.
func auditPath(proto ldp.Protocol, path Path, cfg Config) (Result, error) {
	// Distinct deterministic streams per (path, input) so adding a path
	// to the sweep never perturbs another path's draws.
	salt := uint64(path+1) * 0x9e3779b97f4a7c15
	c0, err := observe(proto, path, rng.New(cfg.Seed^salt), cfg.V0, cfg)
	if err != nil {
		return Result{}, err
	}
	c1, err := observe(proto, path, rng.New(cfg.Seed^salt^0x5851f42d4c957f2d), cfg.V1, cfg)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Protocol: proto.Name(),
		Path:     path.String(),
		Epsilon:  cfg.Epsilon,
		Trials:   cfg.Trials,
	}
	for i := range res.Events {
		res.Events[i] = Event{Name: eventNames[i], CountV0: c0[i], CountV1: c1[i]}
	}
	if err := certify(&res, cfg); err != nil {
		return Result{}, err
	}
	res.Pass = res.EpsEmp <= cfg.Epsilon+cfg.Slack
	return res, nil
}

// certify fills the eps fields of res from its event counts: for every
// event and both directions, bound the log likelihood ratio
// ln(P[event|v_a] / P[event|v_b]) with Clopper-Pearson intervals and
// keep the largest certified lower bound.
func certify(res *Result, cfg Config) error {
	n := res.Trials
	hiSeen := false
	for i, ev := range res.Events {
		lo0, hi0, err := stats.ClopperPearson(ev.CountV0, n, cfg.Confidence)
		if err != nil {
			return err
		}
		lo1, hi1, err := stats.ClopperPearson(ev.CountV1, n, cfg.Confidence)
		if err != nil {
			return err
		}
		for _, dir := range [2]struct {
			lo, hi, a, b float64
			label        string
		}{
			{lo0, hi1, float64(ev.CountV0), float64(ev.CountV1), eventNames[i] + " v0/v1"},
			{lo1, hi0, float64(ev.CountV1), float64(ev.CountV0), eventNames[i] + " v1/v0"},
		} {
			if dir.lo > 0 {
				// hi of the denominator is always > 0, so the certified
				// bound is finite whenever the numerator was observed.
				if emp := math.Log(dir.lo / dir.hi); emp > res.EpsEmp {
					res.EpsEmp = emp
					res.MaxEvent = dir.label
				}
			}
			if dir.a > 0 && dir.b > 0 {
				if pt := math.Log(dir.a / dir.b); pt > res.EpsPoint {
					res.EpsPoint = pt
				}
			}
		}
		// Optimistic upper end over events both inputs reached.
		if lo1 > 0 && ev.CountV0 > 0 {
			hiSeen = true
			if v := math.Log(hi0 / lo1); v > res.EpsHi {
				res.EpsHi = v
			}
		}
		if lo0 > 0 && ev.CountV1 > 0 {
			hiSeen = true
			if v := math.Log(hi1 / lo0); v > res.EpsHi {
				res.EpsHi = v
			}
		}
	}
	if !hiSeen {
		res.EpsHi = 0
		res.EpsHiUnbounded = true
	}
	return nil
}

// observe drives one client path with every user holding item v and
// tallies the support-projection events.
func observe(proto ldp.Protocol, path Path, r *rng.Rand, v int, cfg Config) ([4]int64, error) {
	var counts [4]int64
	switch path {
	case PathItemwise:
		for t := int64(0); t < cfg.Trials; t++ {
			rep, err := proto.Perturb(r, v)
			if err != nil {
				return counts, err
			}
			counts[eventIndex(rep.Supports(cfg.V0), rep.Supports(cfg.V1))]++
		}
	case PathBulk:
		// Chunked so the arena stays modest at large trial counts; the
		// scratch is reused across chunks exactly like a steady-state
		// pipeline reuses it across epochs.
		scratch := &ldp.PerturbScratch{}
		trueCounts := make([]int64, cfg.Domain)
		const chunk = 1 << 15
		for left := cfg.Trials; left > 0; left -= chunk {
			trueCounts[v] = min(left, chunk)
			reports, err := ldp.PerturbAllInto(proto, r, trueCounts, scratch)
			if err != nil {
				return counts, err
			}
			for _, rep := range reports {
				counts[eventIndex(rep.Supports(cfg.V0), rep.Supports(cfg.V1))]++
			}
		}
	case PathCount:
		bp, ok := proto.(ldp.BatchPerturber)
		if !ok {
			return counts, fmt.Errorf("audit: %s does not implement the count path", proto.Name())
		}
		trueCounts := make([]int64, cfg.Domain)
		trueCounts[v] = 1
		for t := int64(0); t < cfg.Trials; t++ {
			out, err := bp.BatchPerturb(r, trueCounts)
			if err != nil {
				return counts, err
			}
			counts[eventIndex(out[cfg.V0] > 0, out[cfg.V1] > 0)]++
		}
	default:
		return counts, fmt.Errorf("audit: unknown path %d", int(path))
	}
	return counts, nil
}
