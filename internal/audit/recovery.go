package audit

import (
	"fmt"

	"ldprecover/internal/dataset"
	"ldprecover/internal/experiment"
	"ldprecover/internal/stats"
)

// RecoveryConfig parameterizes a recovery-robustness audit: the streamed
// MGA scenario is replayed across a grid of attacker strengths and
// seeds, and each run is checked against the recovery pipeline's error
// guarantees.
type RecoveryConfig struct {
	// Protocol names the mechanism (GRR, OUE, or OLH — the streamed
	// scenario follows the paper's evaluated set).
	Protocol string
	// Epsilon is the privacy budget (default 1).
	Epsilon float64
	// Domain and N describe the synthetic Zipf population (defaults 64
	// and 60000); ZipfS is its skew (default 1.1).
	Domain int
	N      int64
	ZipfS  float64
	// Betas is the attacker-strength grid (default {0.05, 0.1, 0.15}).
	Betas []float64
	// Seeds replays each beta under these stream seeds (default {1,2,3}).
	Seeds []uint64
	// Epochs is the stream length (default 16, attacked from the middle
	// with a 3-epoch ramp, matching the stream acceptance test).
	Epochs int
	// NumTargets is the MGA target-set size (default 5).
	NumTargets int
	// MSEFactor is the error guarantee: the steady-state recovered MSE
	// must stay below MSEFactor times the protocol's theoretical
	// no-attack MSE floor (default 30).
	MSEFactor float64
	// FGHalving requires the steady-state recovered frequency gain to be
	// below FGHalving times the poisoned gain (default 0.5 — recovery
	// must claw back at least half of what the attacker gained).
	FGHalving float64
	// EngageLag bounds when cross-epoch detection must engage
	// LDPRecover*: no later than EngageLag epochs after the ramp
	// completes (default 3), and never before the attack starts.
	EngageLag int
	// Confidence is the level of the one-sided Clopper-Pearson upper
	// bound on the violation rate (default 0.95).
	Confidence float64
	// MaxViolationRate is the gate: the audit passes iff the certified
	// upper bound on the per-run violation rate stays below it (default
	// 0.4 — with a short grid the exact bound is necessarily loose; more
	// seeds tighten it).
	MaxViolationRate float64
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Protocol == "" {
		c.Protocol = "OUE"
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1
	}
	if c.Domain == 0 {
		c.Domain = 64
	}
	if c.N == 0 {
		c.N = 60000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if len(c.Betas) == 0 {
		c.Betas = []float64{0.05, 0.1, 0.15}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1, 2, 3}
	}
	if c.Epochs == 0 {
		c.Epochs = 16
	}
	if c.NumTargets == 0 {
		c.NumTargets = 5
	}
	if c.MSEFactor == 0 {
		c.MSEFactor = 30
	}
	if c.FGHalving == 0 {
		c.FGHalving = 0.5
	}
	if c.EngageLag == 0 {
		c.EngageLag = 3
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.MaxViolationRate == 0 {
		c.MaxViolationRate = 0.4
	}
	return c
}

// RecoveryRun is one grid cell's outcome.
type RecoveryRun struct {
	Beta      float64 `json:"beta"`
	Seed      uint64  `json:"seed"`
	MSEBefore float64 `json:"mse_before"`
	MSEAfter  float64 `json:"mse_after"`
	// MSEFloor is the protocol's theoretical no-attack frequency MSE.
	MSEFloor  float64 `json:"mse_floor"`
	FGBefore  float64 `json:"fg_before"`
	FGAfter   float64 `json:"fg_after"`
	EngagedAt int     `json:"engaged_at"`
	// Violations lists the guarantees this run broke (empty: clean).
	Violations []string `json:"violations,omitempty"`
}

// RecoveryResult aggregates the grid and certifies the violation rate.
type RecoveryResult struct {
	Protocol string        `json:"protocol"`
	Epsilon  float64       `json:"epsilon"`
	Runs     []RecoveryRun `json:"runs"`
	// Violated counts runs breaking at least one guarantee.
	Violated int `json:"violated"`
	// Rate is the observed violation rate; RateHi its one-sided
	// Clopper-Pearson upper confidence bound.
	Rate   float64 `json:"rate"`
	RateHi float64 `json:"rate_hi"`
	// Pass is the gate verdict: RateHi <= MaxViolationRate.
	Pass bool `json:"pass"`
}

// Verdict renders the gate outcome for logs.
func (r RecoveryResult) Verdict() string {
	if r.Pass {
		return "PASS"
	}
	return fmt.Sprintf("VIOLATION (%d/%d runs, rate bound %.3f)", r.Violated, len(r.Runs), r.RateHi)
}

// RunRecovery replays the streamed MGA scenario over the configured
// grid and bounds the violation rate of the recovery guarantees.
func RunRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	cfg = cfg.withDefaults()
	kind, err := protocolKind(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.Zipf("audit-recovery", cfg.Domain, cfg.N, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	proto, err := kind.Build(cfg.Domain, cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	// Theoretical no-attack frequency MSE floor: the mean over the
	// domain of each item's estimator variance at its true frequency,
	// scaled from counts to frequencies.
	trueF := ds.Frequencies()
	n := ds.N()
	var floor float64
	for _, f := range trueF {
		floor += proto.Variance(f, n)
	}
	floor /= float64(cfg.Domain) * float64(n) * float64(n)

	res := &RecoveryResult{Protocol: cfg.Protocol, Epsilon: cfg.Epsilon}
	attackStart := cfg.Epochs / 2
	const rampEpochs = 3
	for _, beta := range cfg.Betas {
		for _, seed := range cfg.Seeds {
			sm, err := experiment.RunStream(experiment.StreamScenario{
				Dataset:     ds,
				Protocol:    kind,
				Epsilon:     cfg.Epsilon,
				Beta:        beta,
				NumTargets:  cfg.NumTargets,
				Epochs:      cfg.Epochs,
				AttackStart: attackStart,
				RampEpochs:  rampEpochs,
				StableAfter: 2,
				Seed:        seed,
			})
			if err != nil {
				return nil, err
			}
			steady := sm.Points[cfg.Epochs-1]
			run := RecoveryRun{
				Beta:      beta,
				Seed:      seed,
				MSEBefore: steady.MSEBefore,
				MSEAfter:  steady.MSEAfter,
				MSEFloor:  floor,
				FGBefore:  steady.FGBefore,
				FGAfter:   steady.FGAfter,
				EngagedAt: sm.StarEngagedAt,
			}
			if !(steady.MSEAfter <= cfg.MSEFactor*floor) {
				run.Violations = append(run.Violations, fmt.Sprintf(
					"recovered MSE %.3g above %gx theoretical floor %.3g",
					steady.MSEAfter, cfg.MSEFactor, floor))
			}
			if steady.FGBefore > 0 && !(steady.FGAfter <= cfg.FGHalving*steady.FGBefore) {
				run.Violations = append(run.Violations, fmt.Sprintf(
					"recovered FG %.3g above %g of poisoned FG %.3g",
					steady.FGAfter, cfg.FGHalving, steady.FGBefore))
			}
			deadline := attackStart + rampEpochs + cfg.EngageLag
			if sm.StarEngagedAt < 0 || sm.StarEngagedAt > deadline {
				run.Violations = append(run.Violations, fmt.Sprintf(
					"LDPRecover* engaged at epoch %d, deadline %d", sm.StarEngagedAt, deadline))
			} else if sm.StarEngagedAt < attackStart {
				run.Violations = append(run.Violations, fmt.Sprintf(
					"LDPRecover* engaged at epoch %d before the attack at %d",
					sm.StarEngagedAt, attackStart))
			}
			if len(run.Violations) > 0 {
				res.Violated++
			}
			res.Runs = append(res.Runs, run)
		}
	}
	total := int64(len(res.Runs))
	res.Rate = float64(res.Violated) / float64(total)
	// One-sided upper bound at cfg.Confidence: the two-sided interval at
	// 2c-1 puts exactly 1-c of mass above its upper end.
	_, hi, err := stats.ClopperPearson(int64(res.Violated), total, 2*cfg.Confidence-1)
	if err != nil {
		return nil, err
	}
	res.RateHi = hi
	res.Pass = res.RateHi <= cfg.MaxViolationRate
	return res, nil
}

// protocolKind maps an audit protocol name onto the experiment tier's
// kind. SUE is itemwise-auditable but has no streamed scenario.
func protocolKind(name string) (experiment.ProtocolKind, error) {
	switch name {
	case "GRR":
		return experiment.GRR, nil
	case "OUE":
		return experiment.OUE, nil
	case "OLH":
		return experiment.OLH, nil
	default:
		return 0, fmt.Errorf("audit: no streamed scenario for protocol %q", name)
	}
}
