package audit

import (
	"math"
	"strings"
	"testing"

	"ldprecover/internal/ldp"
)

// TestRunCorrectProtocolsPass audits every protocol through every path
// at a moderate budget: the certified empirical epsilon must stay below
// the claimed budget (the audit is a lower bound) while the point
// estimate should land in its neighborhood for the itemwise max-ratio
// event, proving the distinguisher has real power and is not passing
// vacuously.
func TestRunCorrectProtocolsPass(t *testing.T) {
	for _, name := range Protocols {
		results, err := Run(Config{
			Protocol: name,
			Epsilon:  1,
			Domain:   16,
			Trials:   40000,
			Seed:     7,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(results) != len(AllPaths) {
			t.Fatalf("%s: %d results for %d paths", name, len(results), len(AllPaths))
		}
		for _, res := range results {
			if !res.Pass {
				t.Errorf("%s/%s: %s (eps_emp %.3f > eps %v)",
					name, res.Path, res.Verdict(), res.EpsEmp, res.Epsilon)
			}
			if res.EpsEmp <= 0 {
				t.Errorf("%s/%s: vacuous audit, eps_emp %v", name, res.Path, res.EpsEmp)
			}
			if res.EpsPoint < 0.5 || res.EpsPoint > 1.6 {
				t.Errorf("%s/%s: point estimate %.3f far from eps=1", name, res.Path, res.EpsPoint)
			}
			if !res.EpsHiUnbounded && res.EpsHi < res.EpsEmp {
				t.Errorf("%s/%s: upper end %.3f below certified lower %.3f",
					name, res.Path, res.EpsHi, res.EpsEmp)
			}
			var total0, total1 int64
			for _, ev := range res.Events {
				total0 += ev.CountV0
				total1 += ev.CountV1
			}
			if total0 != res.Trials || total1 != res.Trials {
				t.Errorf("%s/%s: event counts %d/%d do not partition %d trials",
					name, res.Path, total0, total1, res.Trials)
			}
		}
	}
}

// leakyProtocol is the canary: it claims epsilon = 1 but reports the
// truth with GRR probabilities for epsilon = 4 — a 4x privacy leak the
// audit must certify as a VIOLATION, or the gate is decorative.
type leakyProtocol struct {
	ldp.Protocol
	claimed ldp.Params
}

func (l leakyProtocol) Params() ldp.Params { return l.claimed }
func (l leakyProtocol) Name() string       { return "leakyGRR" }

// TestRunLeakyCanaryViolates drives the audit's itemwise path against
// the leaky canary; the certified lower bound must exceed the claimed
// budget and the verdict must name the offending event.
func TestRunLeakyCanaryViolates(t *testing.T) {
	strong, err := ldp.NewGRR(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	weakParams := strong.Params()
	weakParams.Epsilon = 1
	leaky := leakyProtocol{Protocol: strong, claimed: weakParams}

	res, err := auditPath(leaky, PathItemwise, Config{
		Protocol: "GRR",
		Epsilon:  1,
		Domain:   16,
		Trials:   40000,
		Seed:     11,
		V1:       1,
	}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatalf("leaky canary passed the gate: eps_emp %.3f vs claimed 1", res.EpsEmp)
	}
	if res.EpsEmp <= 1.5 {
		t.Fatalf("canary leak under-certified: eps_emp %.3f, true budget 4", res.EpsEmp)
	}
	if !strings.Contains(res.Verdict(), "VIOLATION") {
		t.Fatalf("verdict %q does not flag the violation", res.Verdict())
	}
	if res.MaxEvent == "" {
		t.Fatal("no offending event named")
	}
}

// TestRunValidation covers config validation and unknown names.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Protocol: "GRR", Epsilon: 1, V0: 3, V1: 3}); err == nil {
		t.Fatal("identical neighboring inputs accepted")
	}
	if _, err := Run(Config{Protocol: "GRR", Epsilon: 1, V1: 99}); err == nil {
		t.Fatal("out-of-domain input accepted")
	}
	if _, err := Run(Config{Protocol: "XYZ", Epsilon: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := ParsePath("itemwise"); err != nil {
		t.Fatal("itemwise did not parse")
	}
	if _, err := ParsePath("nope"); err == nil {
		t.Fatal("bogus path parsed")
	}
}

// TestEpsEmpMonotoneInTrials pins the certification direction: more
// evidence can only tighten the certified lower bound toward the true
// budget, never past it.
func TestEpsEmpMonotoneInTrials(t *testing.T) {
	var prev float64
	for _, trials := range []int64{2000, 20000, 80000} {
		results, err := Run(Config{
			Protocol: "GRR",
			Epsilon:  2,
			Domain:   16,
			Trials:   trials,
			Seed:     3,
			Paths:    []Path{PathItemwise},
		})
		if err != nil {
			t.Fatal(err)
		}
		got := results[0].EpsEmp
		if got > 2 {
			t.Fatalf("trials=%d: certified %.3f above the true budget 2", trials, got)
		}
		if got < prev-0.05 {
			t.Fatalf("trials=%d: certified bound regressed %.3f -> %.3f", trials, prev, got)
		}
		prev = got
	}
	if prev < 1.5 {
		t.Fatalf("80k trials certified only %.3f of a 2.0 budget", prev)
	}
}

// TestRunRecoveryCleanPipeline runs a deliberately small grid through
// the real streamed pipeline: the shipped recovery code must keep the
// certified violation-rate bound under the gate.
func TestRunRecoveryCleanPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("streamed grid is seconds-long")
	}
	res, err := RunRecovery(RecoveryConfig{
		Protocol: "OUE",
		Epsilon:  1,
		Domain:   64,
		N:        60000,
		Betas:    []float64{0.1},
		Seeds:    []uint64{5, 6, 7, 8, 9, 10, 11, 12},
		Epochs:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 8 {
		t.Fatalf("%d runs for a 1x8 grid", len(res.Runs))
	}
	if res.Violated != 0 {
		t.Fatalf("clean pipeline violated guarantees: %+v", res.Runs)
	}
	if res.RateHi <= 0 || res.RateHi >= 1 {
		t.Fatalf("rate bound %v outside (0,1)", res.RateHi)
	}
	if !res.Pass {
		t.Fatalf("clean pipeline failed the gate: %s", res.Verdict())
	}
	for _, run := range res.Runs {
		if run.MSEFloor <= 0 || math.IsNaN(run.MSEFloor) {
			t.Fatalf("bogus MSE floor %v", run.MSEFloor)
		}
	}
}

// TestRunRecoveryUnknownProtocol: SUE has no streamed scenario.
func TestRunRecoveryUnknownProtocol(t *testing.T) {
	if _, err := RunRecovery(RecoveryConfig{Protocol: "SUE"}); err == nil {
		t.Fatal("SUE accepted for the recovery audit")
	}
}
