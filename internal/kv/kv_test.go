package kv

import (
	"math"
	"testing"

	"ldprecover/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0.5, 0.5); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := New(10, 0, 0.5); err == nil {
		t.Fatal("eps1=0 accepted")
	}
	if _, err := New(10, 0.5, 0); err == nil {
		t.Fatal("eps2=0 accepted")
	}
	if _, err := New(10, 0.5, math.NaN()); err == nil {
		t.Fatal("eps2=NaN accepted")
	}
	p, err := New(10, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Domain() != 10 {
		t.Fatalf("domain %d", p.Domain())
	}
	wantT := 2*math.Exp(1)/(1+math.Exp(1)) - 1
	if math.Abs(p.ValueRetention()-wantT) > 1e-12 {
		t.Fatalf("retention %v want %v", p.ValueRetention(), wantT)
	}
}

func TestPerturbValidation(t *testing.T) {
	p, _ := New(10, 0.5, 0.5)
	r := rng.New(1)
	if _, err := p.Perturb(nil, Pair{0, 0}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := p.Perturb(r, Pair{0, 1.5}); err == nil {
		t.Fatal("value out of range accepted")
	}
	if _, err := p.Perturb(r, Pair{-1, 0}); err == nil {
		t.Fatal("bad key accepted")
	}
	rep, err := p.Perturb(r, Pair{3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValueBit != 1 && rep.ValueBit != -1 {
		t.Fatalf("value bit %d", rep.ValueBit)
	}
}

func TestCraftReport(t *testing.T) {
	p, _ := New(10, 0.5, 0.5)
	rep, err := p.CraftReport(4, 1)
	if err != nil || rep.Key != 4 || rep.ValueBit != 1 {
		t.Fatalf("crafted %+v (err %v)", rep, err)
	}
	if _, err := p.CraftReport(10, 1); err == nil {
		t.Fatal("bad key accepted")
	}
	if _, err := p.CraftReport(1, 0); err == nil {
		t.Fatal("bad sign accepted")
	}
}

func TestAggregateReportsValidation(t *testing.T) {
	if _, err := AggregateReports(nil, 1); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := AggregateReports([]Report{{Key: 5, ValueBit: 1}}, 3); err == nil {
		t.Fatal("key out of range accepted")
	}
	if _, err := AggregateReports([]Report{{Key: 1, ValueBit: 0}}, 3); err == nil {
		t.Fatal("bad value bit accepted")
	}
	agg, err := AggregateReports([]Report{{0, 1}, {0, -1}, {2, 1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Counts[0] != 2 || agg.ValueSums[0] != 0 || agg.Counts[2] != 1 {
		t.Fatalf("agg %+v", agg)
	}
}

// buildPopulation creates n users over d keys with key frequencies fs and
// per-key means ms (point masses for exactness).
func buildPopulation(d int, n int, fs, ms []float64) []Pair {
	pairs := make([]Pair, 0, n)
	for k := 0; k < d; k++ {
		cnt := int(math.Round(fs[k] * float64(n)))
		for i := 0; i < cnt && len(pairs) < n; i++ {
			pairs = append(pairs, Pair{Key: k, Value: ms[k]})
		}
	}
	for len(pairs) < n {
		pairs = append(pairs, Pair{Key: 0, Value: ms[0]})
	}
	return pairs
}

// TestEstimateUnbiased runs the full clean pipeline and checks both
// channels converge to the truth.
func TestEstimateUnbiased(t *testing.T) {
	const d, n = 8, 60000
	p, err := New(d, 1.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	fs := []float64{0.3, 0.2, 0.15, 0.1, 0.1, 0.06, 0.05, 0.04}
	ms := []float64{0.8, -0.5, 0.3, 0.0, -0.9, 0.6, 0.2, -0.2}
	pairs := buildPopulation(d, n, fs, ms)
	r := rng.New(2)
	// Average several independent collections: single-run mean estimates
	// for rare keys carry noise ~1/f_k, and this test checks bias, not
	// variance.
	const trials = 6
	avgF := make([]float64, d)
	avgM := make([]float64, d)
	for trial := 0; trial < trials; trial++ {
		reports := make([]Report, len(pairs))
		for i, pair := range pairs {
			rep, err := p.Perturb(r, pair)
			if err != nil {
				t.Fatal(err)
			}
			reports[i] = rep
		}
		agg, err := AggregateReports(reports, d)
		if err != nil {
			t.Fatal(err)
		}
		est, err := p.Estimate(agg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < d; k++ {
			avgF[k] += est.Frequencies[k] / trials
			avgM[k] += est.Means[k] / trials
		}
	}
	for k := 0; k < d; k++ {
		if math.Abs(avgF[k]-fs[k]) > 0.02 {
			t.Fatalf("key %d frequency %v want %v", k, avgF[k], fs[k])
		}
		tol := 0.015 / fs[k]
		if tol < 0.1 {
			tol = 0.1
		}
		if math.Abs(avgM[k]-ms[k]) > tol {
			t.Fatalf("key %d mean %v want %v (tol %v)", k, avgM[k], ms[k], tol)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	p, _ := New(5, 0.5, 0.5)
	if _, err := p.Estimate(nil); err == nil {
		t.Fatal("nil aggregate accepted")
	}
	if _, err := p.Estimate(&Aggregate{Counts: make([]int64, 3), ValueSums: make([]float64, 3), Total: 1}); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	if _, err := p.Estimate(&Aggregate{Counts: make([]int64, 5), ValueSums: make([]float64, 5), Total: 0}); err == nil {
		t.Fatal("empty aggregate accepted")
	}
}

// TestRecoverKVUnderAttack poisons both channels of a target key and
// verifies recovery restores frequency and mean.
func TestRecoverKVUnderAttack(t *testing.T) {
	const d, n = 8, 60000
	const target = 2
	p, err := New(d, 1.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	fs := []float64{0.3, 0.2, 0.15, 0.1, 0.1, 0.06, 0.05, 0.04}
	ms := []float64{0.8, -0.5, -0.6, 0.0, -0.9, 0.6, 0.2, -0.2}
	pairs := buildPopulation(d, n, fs, ms)
	r := rng.New(3)
	reports := make([]Report, 0, n+n/19)
	for _, pair := range pairs {
		rep, err := p.Perturb(r, pair)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	// Attacker: beta ~= 0.05, promoting the target key and dragging its
	// mean (truth -0.6) toward +1.
	m := n / 19
	for i := 0; i < m; i++ {
		rep, err := p.CraftReport(target, 1)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	agg, err := AggregateReports(reports, d)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := p.Estimate(agg)
	if err != nil {
		t.Fatal(err)
	}
	// The attack must be visible on both channels.
	if poisoned.Frequencies[target] < fs[target]+0.1 {
		t.Fatalf("frequency attack ineffective: %v", poisoned.Frequencies[target])
	}
	if poisoned.Means[target] < ms[target]+0.3 {
		t.Fatalf("mean attack ineffective: %v", poisoned.Means[target])
	}

	etaTrue := float64(m) / float64(n)
	rec, err := p.Recover(agg, RecoverOptions{Eta: etaTrue, Targets: []int{target}, AttackSign: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Frequency restored.
	if math.Abs(rec.Frequencies[target]-fs[target]) > math.Abs(poisoned.Frequencies[target]-fs[target])/2 {
		t.Fatalf("frequency not recovered: poisoned %v recovered %v true %v",
			poisoned.Frequencies[target], rec.Frequencies[target], fs[target])
	}
	// Mean restored.
	errPoisoned := math.Abs(poisoned.Means[target] - ms[target])
	errRecovered := math.Abs(rec.Means[target] - ms[target])
	if errRecovered > errPoisoned/2 {
		t.Fatalf("mean not recovered: poisoned %v recovered %v true %v",
			poisoned.Means[target], rec.Means[target], ms[target])
	}
	// Non-target keys stay accurate.
	for k := 0; k < d; k++ {
		if k == target {
			continue
		}
		if math.Abs(rec.Means[k]-ms[k]) > 0.3 {
			t.Fatalf("non-target key %d mean drifted: %v want %v", k, rec.Means[k], ms[k])
		}
	}
}

func TestRecoverValidation(t *testing.T) {
	p, _ := New(5, 0.5, 0.5)
	if _, err := p.Recover(nil, RecoverOptions{}); err == nil {
		t.Fatal("nil aggregate accepted")
	}
	agg := &Aggregate{Counts: make([]int64, 5), ValueSums: make([]float64, 5), Total: 100}
	agg.Counts[0] = 100
	if _, err := p.Recover(agg, RecoverOptions{Targets: []int{9}}); err == nil {
		t.Fatal("target out of range accepted")
	}
	if _, err := p.Recover(agg, RecoverOptions{AttackSign: 3}); err == nil {
		t.Fatal("bad sign accepted")
	}
}
