// Package kv implements the paper's named future-work direction
// (§VIII): extending LDPRecover to key-value collection under LDP.
//
// The protocol ("KV-GRR") is a clean composition of the repository's
// existing primitives, in the spirit of PrivKV (Ye et al.): each user
// holds one ⟨key, value⟩ pair with value ∈ [-1, 1]. The key is perturbed
// with GRR(ε1) over the key domain; a value bit rides along, produced by
// Harmony-style discretization of the user's value followed by binary
// randomized response with ε2. The total privacy budget is ε1 + ε2 by
// sequential composition.
//
// Server-side estimation is closed-form and unbiased. With p,q the GRR
// aggregation pair, t = 2p2-1 the value-bit retention (p2 =
// e^{ε2}/(1+e^{ε2})), S_j the sum of value bits of reports landing on
// key j, and V = Σ_u n_u·m_u the global value mass:
//
//	E[S_j] = t·(n_j·m_j·(p-q) + q·V)
//	E[Σ_j S_j] = t·(p+(d-1)q)·V
//
// so V, then each key's mean m_j, invert directly — the exact analogue of
// Eq. 11 for the value channel.
//
// Poisoning: a targeted attacker submits (target key, +1) pairs, jointly
// inflating the target's frequency and mean. RecoverKV applies LDPRecover
// to the key frequencies (unchanged) and deducts the attacker's expected
// value-bit mass from the value channel using the same η and target
// knowledge, recovering both statistics.
package kv

import (
	"errors"
	"fmt"
	"math"

	"ldprecover/internal/core"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// Pair is one user's datum.
type Pair struct {
	// Key is the item identifier in [0, d).
	Key int
	// Value is the numeric payload in [-1, 1].
	Value float64
}

// Report is one perturbed key-value submission.
type Report struct {
	// Key is the GRR-perturbed key.
	Key int
	// ValueBit is the perturbed discretized value: -1 or +1.
	ValueBit int8
}

// Protocol is the KV-GRR mechanism.
type Protocol struct {
	grr *ldp.GRR
	// p2 is the value-bit retention probability e^{ε2}/(1+e^{ε2}).
	p2 float64
	// eps1 and eps2 record the budget split.
	eps1, eps2 float64
}

// New constructs KV-GRR over d keys with budget split (eps1 for keys,
// eps2 for values).
func New(d int, eps1, eps2 float64) (*Protocol, error) {
	grr, err := ldp.NewGRR(d, eps1)
	if err != nil {
		return nil, err
	}
	if eps2 <= 0 || math.IsNaN(eps2) || math.IsInf(eps2, 0) {
		return nil, fmt.Errorf("kv: invalid value budget %v", eps2)
	}
	return &Protocol{
		grr:  grr,
		p2:   math.Exp(eps2) / (1 + math.Exp(eps2)),
		eps1: eps1,
		eps2: eps2,
	}, nil
}

// Domain returns the key domain size.
func (p *Protocol) Domain() int { return p.grr.Params().Domain }

// KeyParams returns the key channel's aggregation parameters.
func (p *Protocol) KeyParams() ldp.Params { return p.grr.Params() }

// ValueRetention returns t = 2·p2 - 1, the value channel's signal
// retention factor.
func (p *Protocol) ValueRetention() float64 { return 2*p.p2 - 1 }

// Perturb produces one user's report.
func (p *Protocol) Perturb(r *rng.Rand, pair Pair) (Report, error) {
	if r == nil {
		return Report{}, errors.New("kv: nil random generator")
	}
	if math.IsNaN(pair.Value) || pair.Value < -1 || pair.Value > 1 {
		return Report{}, fmt.Errorf("kv: value %v outside [-1,1]", pair.Value)
	}
	keyRep, err := p.grr.Perturb(r, pair.Key)
	if err != nil {
		return Report{}, err
	}
	// Harmony discretization of the value.
	bit := int8(-1)
	if r.Bernoulli((1 + pair.Value) / 2) {
		bit = 1
	}
	// Binary randomized response on the bit.
	if !r.Bernoulli(p.p2) {
		bit = -bit
	}
	return Report{Key: int(keyRep.(ldp.GRRReport)), ValueBit: bit}, nil
}

// CraftReport is the attacker primitive: an unperturbed (key, +1 or -1)
// submission promoting the key and dragging its mean toward sign.
func (p *Protocol) CraftReport(key int, sign int8) (Report, error) {
	if key < 0 || key >= p.Domain() {
		return Report{}, fmt.Errorf("kv: key %d outside domain [0,%d)", key, p.Domain())
	}
	if sign != 1 && sign != -1 {
		return Report{}, fmt.Errorf("kv: crafted value bit must be ±1, got %d", sign)
	}
	return Report{Key: key, ValueBit: sign}, nil
}

// Aggregate is the raw server-side tally: per-key report counts and
// value-bit sums.
type Aggregate struct {
	// Counts[j] is the number of reports whose key landed on j.
	Counts []int64
	// ValueSums[j] is the sum of value bits of those reports.
	ValueSums []float64
	// Total is the number of reports aggregated.
	Total int64
}

// AggregateReports tallies reports over a domain of size d.
func AggregateReports(reports []Report, d int) (*Aggregate, error) {
	if d < 2 {
		return nil, fmt.Errorf("kv: invalid domain %d", d)
	}
	agg := &Aggregate{
		Counts:    make([]int64, d),
		ValueSums: make([]float64, d),
		Total:     int64(len(reports)),
	}
	for i, rep := range reports {
		if rep.Key < 0 || rep.Key >= d {
			return nil, fmt.Errorf("kv: report %d has key %d outside [0,%d)", i, rep.Key, d)
		}
		if rep.ValueBit != 1 && rep.ValueBit != -1 {
			return nil, fmt.Errorf("kv: report %d has value bit %d", i, rep.ValueBit)
		}
		agg.Counts[rep.Key]++
		agg.ValueSums[rep.Key] += float64(rep.ValueBit)
	}
	return agg, nil
}

// Estimate carries per-key frequency and mean estimates.
type Estimate struct {
	// Frequencies is the unbiased key-frequency vector.
	Frequencies []float64
	// Means is the per-key value mean estimate, clamped to [-1, 1]; keys
	// with non-positive estimated mass fall back to 0.
	Means []float64
}

// Estimate inverts the aggregation into unbiased frequency and mean
// estimates.
func (p *Protocol) Estimate(agg *Aggregate) (*Estimate, error) {
	if agg == nil {
		return nil, errors.New("kv: nil aggregate")
	}
	d := p.Domain()
	if len(agg.Counts) != d || len(agg.ValueSums) != d {
		return nil, fmt.Errorf("kv: aggregate domain mismatch")
	}
	if agg.Total <= 0 {
		return nil, errors.New("kv: empty aggregate")
	}
	pr := p.grr.Params()
	freqs, err := ldp.Unbias(agg.Counts, agg.Total, pr)
	if err != nil {
		return nil, err
	}
	t := p.ValueRetention()
	n := float64(agg.Total)
	// V̂ = Σ_j S_j / (t·(p+(d-1)q)).
	var sTotal float64
	for _, s := range agg.ValueSums {
		sTotal += s
	}
	vHat := sTotal / (t * (pr.P + float64(d-1)*pr.Q))
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		// n_j·m_j = (S_j/t - q·V̂)/(p-q); m_j = that / (n·f_j).
		mass := (agg.ValueSums[j]/t - pr.Q*vHat) / (pr.P - pr.Q)
		nj := n * freqs[j]
		if nj <= 0 {
			means[j] = 0
			continue
		}
		m := mass / nj
		if m > 1 {
			m = 1
		}
		if m < -1 {
			m = -1
		}
		means[j] = m
	}
	return &Estimate{Frequencies: freqs, Means: means}, nil
}

// RecoverOptions configures KV recovery.
type RecoverOptions struct {
	// Eta is the assumed malicious/genuine ratio (0 = core default).
	Eta float64
	// Targets are attacker-promoted keys, when known. They drive both
	// LDPRecover* on the frequency channel and the value-channel
	// deduction.
	Targets []int
	// AttackSign is the value the attacker pushes targets toward (+1 or
	// -1); defaults to +1.
	AttackSign int8
}

// Recovered carries recovery outputs for both channels.
type Recovered struct {
	// Frequencies is the recovered key-frequency simplex point.
	Frequencies []float64
	// Means is the recovered per-key mean vector.
	Means []float64
	// FrequencyResult is the underlying frequency recovery diagnostics.
	FrequencyResult *core.Result
}

// Recover applies LDPRecover to a poisoned key-value aggregate: the key
// frequencies run through the standard pipeline, and with target
// knowledge the attacker's expected value-bit mass η·n·sign per target is
// deducted from the value channel before mean inversion.
func (p *Protocol) Recover(agg *Aggregate, opts RecoverOptions) (*Recovered, error) {
	if agg == nil {
		return nil, errors.New("kv: nil aggregate")
	}
	pr := p.grr.Params()
	d := p.Domain()
	freqs, err := ldp.Unbias(agg.Counts, agg.Total, pr)
	if err != nil {
		return nil, err
	}
	res, err := core.Recover(freqs, core.Params{P: pr.P, Q: pr.Q, Domain: d}, core.Options{
		Eta:     opts.Eta,
		Targets: opts.Targets,
	})
	if err != nil {
		return nil, err
	}

	sign := opts.AttackSign
	if sign == 0 {
		sign = 1
	}
	if sign != 1 && sign != -1 {
		return nil, fmt.Errorf("kv: attack sign must be ±1, got %d", sign)
	}

	// Genuine population size under the assumed ratio: n_total = n(1+η)
	// => n ≈ total/(1+η), malicious m ≈ total - n.
	eta := res.Eta
	nGenuine := float64(agg.Total) / (1 + eta)
	mMalicious := float64(agg.Total) - nGenuine

	// Deduct the attacker's expected value-bit mass from the targets'
	// sums (crafted bits bypass perturbation, so no 1/t correction), then
	// invert means against the RECOVERED frequencies and genuine count.
	sums := append([]float64(nil), agg.ValueSums...)
	if len(opts.Targets) > 0 {
		share := mMalicious * float64(sign) / float64(len(opts.Targets))
		for _, tgt := range opts.Targets {
			if tgt < 0 || tgt >= d {
				return nil, fmt.Errorf("kv: target %d outside domain [0,%d)", tgt, d)
			}
			sums[tgt] -= share
		}
	}
	t := p.ValueRetention()
	var sTotal float64
	for _, s := range sums {
		sTotal += s
	}
	vHat := sTotal / (t * (pr.P + float64(d-1)*pr.Q))
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		mass := (sums[j]/t - pr.Q*vHat) / (pr.P - pr.Q)
		nj := nGenuine * res.Frequencies[j]
		if nj <= 0 {
			means[j] = 0
			continue
		}
		m := mass / nj
		if m > 1 {
			m = 1
		}
		if m < -1 {
			m = -1
		}
		means[j] = m
	}
	return &Recovered{
		Frequencies:     res.Frequencies,
		Means:           means,
		FrequencyResult: res,
	}, nil
}
