package core

import (
	"math"
	"slices"
	"testing"

	"ldprecover/internal/rng"
)

// Metamorphic properties of the recovery math — relations between runs
// that must hold for every input, complementing the pointwise golden
// tests:
//
//  1. near-identity: recovering an unpoisoned estimate moves it by at
//     most O(η) in L∞ (the estimator deducts at most η·f̃_Y mass, and
//     the simplex refinement is a projection — non-expansive);
//  2. permutation equivariance: relabeling the items and recovering
//     commutes with recovering and then relabeling;
//  3. simplex membership: whatever the (finite) input, recovered
//     frequencies are non-negative and sum to one.

// metaParams are OUE-shaped recovery parameters over domain d.
func metaParams(d int) Params {
	return Params{P: 0.5, Q: 0.25, Domain: d}
}

// randomSimplex draws a random frequency vector on the simplex.
func randomSimplex(r *rng.Rand, d int) []float64 {
	f := make([]float64, d)
	var sum float64
	for v := range f {
		f[v] = -math.Log(1 - r.Float64()) // Exp(1); normalized below
		sum += f[v]
	}
	for v := range f {
		f[v] /= sum
	}
	return f
}

// randomEstimate draws an unbiased-estimator-shaped vector: simplex
// frequencies plus zero-mean noise, so entries can be negative and the
// sum drifts from one — exactly what Unbias produces on real counts.
func randomEstimate(r *rng.Rand, d int, noise float64) []float64 {
	f := randomSimplex(r, d)
	for v := range f {
		f[v] += noise * (r.Float64() - 0.5)
	}
	return f
}

// TestRecoverUnpoisonedNearIdentityProperty: on clean estimates,
// recovery must be (within an O(η) tolerance) the identity — the
// defense must not destroy what it protects when no attack is present.
func TestRecoverUnpoisonedNearIdentityProperty(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 50; trial++ {
		d := 8 + int(r.Uint64()%120)
		pr := metaParams(d)
		clean := randomSimplex(r, d)
		for _, eta := range []float64{0.01, 0.05, 0.2} {
			res, err := Recover(clean, pr, Options{Eta: eta})
			if err != nil {
				t.Fatal(err)
			}
			// The estimator moves each entry by at most η·(f̃_Z + f̃_Y)
			// ≤ η·(max f̃_Z + 1) before refinement, and the simplex
			// projection can redistribute that drift across the domain;
			// 2η (+ slack for the projection's uniform shift) bounds the
			// per-item motion comfortably while still failing if
			// recovery ever scales or shuffles a clean estimate.
			tol := 2*eta + 1e-9
			for v := range clean {
				if diff := math.Abs(res.Frequencies[v] - clean[v]); diff > tol {
					t.Fatalf("trial %d d=%d eta=%g: recovery moved clean f[%d] by %g (> %g)",
						trial, d, eta, v, diff, tol)
				}
			}
		}
	}
}

// TestRecoverPermutationEquivarianceProperty: item labels carry no
// information, so recovery must commute with any relabeling — for both
// LDPRecover and LDPRecover* (with the target set relabeled alongside).
// Tolerance instead of bit equality: summations run in permuted order.
func TestRecoverPermutationEquivarianceProperty(t *testing.T) {
	const tol = 1e-9
	r := rng.New(43)
	for trial := 0; trial < 25; trial++ {
		d := 8 + int(r.Uint64()%60)
		pr := metaParams(d)
		poisoned := randomEstimate(r, d, 0.1)

		perm := make([]int, d) // perm[i] = where item i lands
		for i := range perm {
			perm[i] = i
		}
		for i := d - 1; i > 0; i-- {
			j := int(r.Uint64() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		permute := func(f []float64) []float64 {
			out := make([]float64, d)
			for i, v := range f {
				out[perm[i]] = v
			}
			return out
		}

		var targets []int
		if trial%2 == 1 { // alternate LDPRecover and LDPRecover*
			targets = []int{1, 4}
		}
		res, err := Recover(poisoned, pr, Options{Targets: targets})
		if err != nil {
			t.Fatal(err)
		}
		var permTargets []int
		for _, v := range targets {
			permTargets = append(permTargets, perm[v])
		}
		permRes, err := Recover(permute(poisoned), pr, Options{Targets: permTargets})
		if err != nil {
			t.Fatal(err)
		}
		want := permute(res.Frequencies)
		for v := range want {
			if diff := math.Abs(permRes.Frequencies[v] - want[v]); diff > tol {
				t.Fatalf("trial %d d=%d targets=%v: recovery not permutation-equivariant at %d (|Δ|=%g)",
					trial, d, targets, v, diff)
			}
		}
	}
}

// TestRecoverSimplexMembershipProperty: for any finite input — noisy,
// negative-entry, badly scaled — and any recovery mode, the output is a
// probability distribution: non-negative entries summing to one.
func TestRecoverSimplexMembershipProperty(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 100; trial++ {
		d := 4 + int(r.Uint64()%250)
		pr := metaParams(d)
		// Escalating distortion: light LDP noise through wildly invalid
		// "estimates" an attacker or a bug could hand the recoverer.
		noise := []float64{0.05, 0.5, 3}[trial%3]
		poisoned := randomEstimate(r, d, noise)
		opts := Options{}
		switch trial % 4 {
		case 1:
			opts.Targets = []int{0, d / 2, d - 1}
		case 2:
			opts.Eta = 0.9
		case 3:
			opts.MaliciousOverride = randomSimplex(r, d)
		}
		res, err := Recover(poisoned, pr, opts)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for v, f := range res.Frequencies {
			if f < 0 || math.IsNaN(f) {
				t.Fatalf("trial %d d=%d opts=%+v: recovered f[%d] = %g off the simplex",
					trial, d, opts, v, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d d=%d: recovered frequencies sum to %g", trial, d, sum)
		}
		// Determinism sanity alongside: the same input recovers to the
		// same bits (the cluster equivalence guarantee leans on this).
		again, err := Recover(poisoned, pr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(again.Frequencies, res.Frequencies) {
			t.Fatalf("trial %d: recovery is not deterministic", trial)
		}
	}
}
