package core

import (
	"math"
	"testing"
	"testing/quick"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

func TestRecoverValidation(t *testing.T) {
	pr := grrParams(5, 0.5)
	if _, err := Recover([]float64{1, 2}, pr, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Recover(nil, Params{}, Options{}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := Recover([]float64{math.NaN(), 0, 0, 0, 0}, pr, Options{}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Recover(make([]float64, 5), pr, Options{Eta: -1}); err == nil {
		t.Fatal("negative eta accepted")
	}
	if _, err := Recover(make([]float64, 5), pr, Options{Targets: []int{9}}); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := Recover(make([]float64, 5), pr, Options{MaliciousOverride: []float64{1}}); err == nil {
		t.Fatal("override length mismatch accepted")
	}
	if _, err := Recover(make([]float64, 5), pr, Options{MaliciousOverride: []float64{1, math.Inf(1), 0, 0, 0}}); err == nil {
		t.Fatal("non-finite override accepted")
	}
}

func TestRecoverOutputOnSimplex(t *testing.T) {
	pr := grrParams(8, 0.5)
	poisoned := []float64{0.4, -0.05, 0.2, 0.3, 0.05, 0.02, 0.05, 0.03}
	res, err := Recover(poisoned, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	onSimplex(t, res.Frequencies, 1e-9)
	if res.Eta != DefaultEta {
		t.Fatalf("eta %v want default %v", res.Eta, DefaultEta)
	}
	if res.PartialKnowledge {
		t.Fatal("non-knowledge run flagged as partial")
	}
	wantSum, _ := MaliciousSum(pr)
	if math.Abs(res.MaliciousSum-wantSum) > 1e-12 {
		t.Fatalf("malicious sum %v want %v", res.MaliciousSum, wantSum)
	}
}

func TestRecoverOutputOnSimplexProperty(t *testing.T) {
	f := func(seed uint64, dRaw uint8, protoPick uint8) bool {
		r := rng.New(seed)
		d := int(dRaw%40) + 2
		var pr Params
		switch protoPick % 3 {
		case 0:
			pr = grrParams(d, 0.5)
		case 1:
			pr = oueParams(d, 0.5)
		default:
			pr = olhParams(d, 0.5)
		}
		poisoned := make([]float64, d)
		for v := range poisoned {
			poisoned[v] = 2 * (r.Float64() - 0.3)
		}
		res, err := Recover(poisoned, pr, Options{Eta: 0.2})
		if err != nil {
			return false
		}
		var sum float64
		for _, fr := range res.Frequencies {
			if fr < 0 {
				return false
			}
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverPartialKnowledge(t *testing.T) {
	pr := oueParams(10, 0.5)
	poisoned := []float64{0.1, 0.1, 0.5, 0.05, 0.05, 0.05, 0.05, 0.4, 0.02, 0.03}
	res, err := Recover(poisoned, pr, Options{Targets: []int{2, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PartialKnowledge {
		t.Fatal("partial run not flagged")
	}
	onSimplex(t, res.Frequencies, 1e-9)
	// The targeted items must be deflated relative to plain projection of
	// the poisoned vector.
	plain, err := RefineKKT(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frequencies[2] >= plain[2] || res.Frequencies[7] >= plain[7] {
		t.Fatalf("targets not deflated: %v vs plain %v", res.Frequencies, plain)
	}
}

func TestRecoverMaliciousOverride(t *testing.T) {
	pr := grrParams(4, 0.5)
	poisoned := []float64{0.7, 0.1, 0.1, 0.1}
	override := []float64{1, 0, 0, 0} // all malicious mass on item 0
	res, err := Recover(poisoned, pr, Options{MaliciousOverride: override, Eta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaliciousSum-1) > 1e-12 {
		t.Fatalf("override sum %v want 1", res.MaliciousSum)
	}
	// Estimator: item 0 gets 1.5*0.7 - 0.5*1 = 0.55; others 0.15.
	if math.Abs(res.EstimatedGenuine[0]-0.55) > 1e-12 {
		t.Fatalf("estimated genuine %v", res.EstimatedGenuine)
	}
	onSimplex(t, res.Frequencies, 1e-9)
}

func TestRecoverSkipRefine(t *testing.T) {
	pr := grrParams(4, 0.5)
	poisoned := []float64{0.9, 0.2, -0.1, 0.1}
	res, err := Recover(poisoned, pr, Options{SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Frequencies {
		if res.Frequencies[v] != res.EstimatedGenuine[v] {
			t.Fatal("SkipRefine should return the raw estimate")
		}
	}
}

func TestRecoverCustomRefiner(t *testing.T) {
	pr := grrParams(4, 0.5)
	poisoned := []float64{0.9, 0.2, -0.1, 0.1}
	res, err := Recover(poisoned, pr, Options{Refiner: ProjectSimplex})
	if err != nil {
		t.Fatal(err)
	}
	resKKT, err := Recover(poisoned, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Frequencies {
		if math.Abs(res.Frequencies[v]-resKKT.Frequencies[v]) > 1e-9 {
			t.Fatalf("refiners disagree: %v vs %v", res.Frequencies, resKKT.Frequencies)
		}
	}
}

// TestRecoverEndToEndMGAShape builds a synthetic MGA-poisoned vector
// analytically and verifies recovery cuts the error by a large factor and
// suppresses the target's gain (the paper's headline result at unit-test
// scale).
func TestRecoverEndToEndMGAShape(t *testing.T) {
	const d = 102
	pr := grrParams(d, 0.5)
	// Genuine: Zipf-ish decreasing frequencies.
	genuine := make([]float64, d)
	var z float64
	for v := range genuine {
		genuine[v] = 1 / float64(v+1)
		z += genuine[v]
	}
	for v := range genuine {
		genuine[v] /= z
	}
	// MGA on 10 targets at beta=0.05: in expectation each target gains
	// beta*(1/r - q)/(p-q) / (1+eta') ... build the poisoned vector from
	// the mixture equation (Eq. 14) with exact expectations.
	targets := []int{3, 13, 23, 33, 43, 53, 63, 73, 83, 93}
	beta := 0.05
	etaTrue := beta / (1 - beta)
	malicious := make([]float64, d)
	for v := range malicious {
		malicious[v] = -pr.Q * float64(d) / (float64(d) * (pr.P - pr.Q)) // baseline: -q/(p-q) each
	}
	for _, tt := range targets {
		malicious[tt] += 1.0 / (float64(len(targets)) * (pr.P - pr.Q))
	}
	poisoned := make([]float64, d)
	for v := range poisoned {
		poisoned[v] = genuine[v]/(1+etaTrue) + etaTrue*malicious[v]/(1+etaTrue)
	}

	res, err := Recover(poisoned, pr, Options{Eta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	msePoisoned, _ := stats.MSE(poisoned, genuine)
	mseRecovered, _ := stats.MSE(res.Frequencies, genuine)
	if mseRecovered > msePoisoned/3 {
		t.Fatalf("recovery too weak: poisoned MSE %v recovered %v", msePoisoned, mseRecovered)
	}

	// Partial knowledge should do at least as well on the targets.
	resStar, err := Recover(poisoned, pr, Options{Eta: 0.2, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	var fg, fgStar float64
	for _, tt := range targets {
		fg += res.Frequencies[tt] - genuine[tt]
		fgStar += resStar.Frequencies[tt] - genuine[tt]
	}
	var fgPoisoned float64
	for _, tt := range targets {
		fgPoisoned += poisoned[tt] - genuine[tt]
	}
	if math.Abs(fg) > fgPoisoned/2 {
		t.Fatalf("FG not reduced: poisoned %v recovered %v", fgPoisoned, fg)
	}
	if fgStar > fg+1e-9 {
		t.Fatalf("partial knowledge worse on targets: %v vs %v", fgStar, fg)
	}
}

func TestRecoverDoesNotMutateInput(t *testing.T) {
	pr := grrParams(4, 0.5)
	poisoned := []float64{0.9, 0.2, -0.1, 0.1}
	orig := append([]float64(nil), poisoned...)
	if _, err := Recover(poisoned, pr, Options{}); err != nil {
		t.Fatal(err)
	}
	for v := range orig {
		if poisoned[v] != orig[v] {
			t.Fatal("Recover mutated its input")
		}
	}
}
