package core

import (
	"math"
	"testing"

	"ldprecover/internal/stats"
)

// grrParams returns the aggregation triple for GRR at (d, eps).
func grrParams(d int, eps float64) Params {
	expE := math.Exp(eps)
	return Params{
		P:      expE / (float64(d) - 1 + expE),
		Q:      1 / (float64(d) - 1 + expE),
		Domain: d,
	}
}

// oueParams returns the aggregation triple for OUE at (d, eps).
func oueParams(d int, eps float64) Params {
	return Params{P: 0.5, Q: 1 / (math.Exp(eps) + 1), Domain: d}
}

// olhParams returns the aggregation triple for OLH at (d, eps).
func olhParams(d int, eps float64) Params {
	expE := math.Exp(eps)
	g := math.Ceil(expE + 1)
	return Params{P: expE / (expE + g - 1), Q: 1 / g, Domain: d}
}

func TestParamsValidate(t *testing.T) {
	good := grrParams(102, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{P: 0.5, Q: 0.1, Domain: 1},
		{P: 0.1, Q: 0.5, Domain: 10},
		{P: math.NaN(), Q: 0.1, Domain: 10},
		{P: 1.2, Q: 0.1, Domain: 10},
		{P: 0.5, Q: -0.1, Domain: 10},
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, pr)
		}
	}
}

func TestMaliciousSumFormula(t *testing.T) {
	// GRR: q·d = d/(d-1+e^eps) < 1, so the sum is positive and close to 1.
	pr := grrParams(102, 0.5)
	sum, err := MaliciousSum(pr)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - pr.Q*102) / (pr.P - pr.Q)
	if math.Abs(sum-want) > 1e-12 {
		t.Fatalf("sum %v want %v", sum, want)
	}
	if sum < 0.9 || sum > 1.1 {
		t.Fatalf("GRR malicious sum %v not ~1", sum)
	}

	// OUE at eps=0.5, d=102: q·d >> 1, so the learnt sum is strongly
	// negative (the paper's learning reflects unbias subtraction).
	sumOUE, err := MaliciousSum(oueParams(102, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if sumOUE >= 0 {
		t.Fatalf("OUE malicious sum %v should be negative", sumOUE)
	}

	if _, err := MaliciousSum(Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestNonKnowledgeMaliciousSplit(t *testing.T) {
	pr := grrParams(6, 0.5)
	poisoned := []float64{0.5, -0.1, 0.3, 0, 0.2, 0.1}
	mal, inD1, err := NonKnowledgeMalicious(poisoned, pr)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := MaliciousSum(pr)
	// D0 = {1, 3} (f <= 0); D1 = the other four.
	wantD1 := []bool{true, false, true, false, true, true}
	for v := range wantD1 {
		if inD1[v] != wantD1[v] {
			t.Fatalf("D1 mask %v want %v", inD1, wantD1)
		}
	}
	for v, m := range mal {
		if !inD1[v] && m != 0 {
			t.Fatalf("D0 item %d has malicious mass %v", v, m)
		}
		if inD1[v] && math.Abs(m-sum/4) > 1e-12 {
			t.Fatalf("D1 item %d share %v want %v", v, m, sum/4)
		}
	}
	if s := stats.Sum(mal); math.Abs(s-sum) > 1e-9 {
		t.Fatalf("allocation sums to %v want %v", s, sum)
	}
}

func TestNonKnowledgeMaliciousAllNonPositive(t *testing.T) {
	pr := grrParams(3, 0.5)
	mal, inD1, err := NonKnowledgeMalicious([]float64{-1, 0, -0.5}, pr)
	if err != nil {
		t.Fatal(err)
	}
	for v := range inD1 {
		if !inD1[v] {
			t.Fatal("degenerate input should treat whole domain as D1")
		}
	}
	sum, _ := MaliciousSum(pr)
	if s := stats.Sum(mal); math.Abs(s-sum) > 1e-9 {
		t.Fatalf("allocation sums to %v want %v", s, sum)
	}
}

func TestNonKnowledgeMaliciousValidation(t *testing.T) {
	pr := grrParams(4, 0.5)
	if _, _, err := NonKnowledgeMalicious([]float64{1, 2}, pr); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := NonKnowledgeMalicious(nil, Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestPartialKnowledgeMaliciousAllocation(t *testing.T) {
	pr := oueParams(10, 0.5)
	targets := []int{2, 7}
	mal, err := PartialKnowledgeMalicious(targets, pr)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 30: non-targets get -q*d/(|D'|(p-q)) each.
	wantNonTarget := -pr.Q * 10 / (8 * (pr.P - pr.Q))
	for v, m := range mal {
		if v == 2 || v == 7 {
			continue
		}
		if math.Abs(m-wantNonTarget) > 1e-12 {
			t.Fatalf("non-target %d share %v want %v", v, m, wantNonTarget)
		}
	}
	// Targets share the remainder: (sum - nonTargetSum)/|T| = 1/(2(p-q)).
	wantTarget := 1 / (2 * (pr.P - pr.Q))
	if math.Abs(mal[2]-wantTarget) > 1e-9 || math.Abs(mal[7]-wantTarget) > 1e-9 {
		t.Fatalf("target share %v / %v want %v", mal[2], mal[7], wantTarget)
	}
	// Whole allocation sums to the learnt summation.
	sum, _ := MaliciousSum(pr)
	if s := stats.Sum(mal); math.Abs(s-sum) > 1e-9 {
		t.Fatalf("allocation sums to %v want %v", s, sum)
	}
}

func TestPartialKnowledgeAllTargets(t *testing.T) {
	pr := grrParams(5, 0.5)
	mal, err := PartialKnowledgeMalicious([]int{0, 1, 2, 3, 4}, pr)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := MaliciousSum(pr)
	for _, m := range mal {
		if math.Abs(m-sum/5) > 1e-12 {
			t.Fatalf("uniform spread expected, got %v", mal)
		}
	}
}

func TestPartialKnowledgeValidation(t *testing.T) {
	pr := grrParams(5, 0.5)
	if _, err := PartialKnowledgeMalicious(nil, pr); err == nil {
		t.Fatal("empty targets accepted")
	}
	if _, err := PartialKnowledgeMalicious([]int{5}, pr); err == nil {
		t.Fatal("out-of-domain target accepted")
	}
	if _, err := PartialKnowledgeMalicious([]int{1, 1}, pr); err == nil {
		t.Fatal("duplicate target accepted")
	}
	if _, err := PartialKnowledgeMalicious([]int{-1}, pr); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestEstimateGenuineAlgebra(t *testing.T) {
	poisoned := []float64{0.4, 0.3, 0.3}
	malicious := []float64{1, 0, -1}
	got, err := EstimateGenuine(poisoned, malicious, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5*0.4 - 0.5, 1.5 * 0.3, 1.5*0.3 + 0.5}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("estimate %v want %v", got, want)
		}
	}
}

func TestEstimateInvertRoundTrip(t *testing.T) {
	poisoned := []float64{0.1, 0.5, -0.2, 0.6}
	malicious := []float64{0.3, -0.1, 0.2, 0.6}
	est, err := EstimateGenuine(poisoned, malicious, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := InvertEstimate(est, malicious, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for v := range poisoned {
		if math.Abs(back[v]-poisoned[v]) > 1e-12 {
			t.Fatalf("round trip %v want %v", back, poisoned)
		}
	}
}

func TestEstimateGenuineValidation(t *testing.T) {
	if _, err := EstimateGenuine([]float64{1}, []float64{1, 2}, 0.2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := EstimateGenuine(nil, nil, 0.2); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := EstimateGenuine([]float64{1}, []float64{1}, -0.1); err == nil {
		t.Fatal("negative eta accepted")
	}
	if _, err := EstimateGenuine([]float64{math.NaN()}, []float64{1}, 0.2); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := InvertEstimate([]float64{1}, []float64{1, 2}, 0.2); err == nil {
		t.Fatal("invert length mismatch accepted")
	}
	if _, err := InvertEstimate([]float64{1}, []float64{1}, math.Inf(1)); err == nil {
		t.Fatal("invert eta=Inf accepted")
	}
}
