package core

import (
	"fmt"
)

// MaliciousSum returns the server-side estimate of the summation of
// malicious frequencies over all items (Eq. 21):
//
//	Σ_v f̃_Y(v) ≜ (1 - q·d) / (p - q)
//
// It follows from the aggregation algorithm alone — malicious data bypass
// perturbation but are still unbiased-corrected by Eq. (11) — so the
// server can compute it with no knowledge of the attack.
func MaliciousSum(pr Params) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	return (1 - pr.Q*float64(pr.Domain)) / (pr.P - pr.Q), nil
}

// NonKnowledgeMalicious allocates the malicious-frequency summation when
// the server knows nothing about the attack (Eq. 26): the domain splits
// into D0 = {v : f̃_Z(v) <= 0} (items assumed untouched) and D1 = D \ D0
// (potential attack items), and the malicious mass spreads uniformly over
// D1. It returns the per-item malicious frequency estimate f̃'_Y along
// with the D1 membership mask.
//
// If every poisoned frequency is non-positive (possible only in degenerate
// inputs), the whole domain is treated as D1 so the allocation remains
// well defined.
func NonKnowledgeMalicious(poisoned []float64, pr Params) (malicious []float64, inD1 []bool, err error) {
	if err := pr.Validate(); err != nil {
		return nil, nil, err
	}
	if len(poisoned) != pr.Domain {
		return nil, nil, fmt.Errorf("core: poisoned vector length %d, domain %d", len(poisoned), pr.Domain)
	}
	sum, err := MaliciousSum(pr)
	if err != nil {
		return nil, nil, err
	}
	inD1 = make([]bool, len(poisoned))
	d1 := 0
	for v, f := range poisoned {
		if f > 0 {
			inD1[v] = true
			d1++
		}
	}
	if d1 == 0 {
		for v := range inD1 {
			inD1[v] = true
		}
		d1 = len(inD1)
	}
	malicious = make([]float64, len(poisoned))
	share := sum / float64(d1)
	for v := range malicious {
		if inD1[v] {
			malicious[v] = share
		}
	}
	return malicious, inD1, nil
}

// PartialKnowledgeMalicious allocates the malicious-frequency summation
// when the server knows the attacker-selected items T (Eq. 28–30,
// LDPRecover*): items outside T carry the aggregation-induced negative
// mass -q·d/(|D'|·(p-q)) and the remainder spreads uniformly over T.
func PartialKnowledgeMalicious(targets []int, pr Params) ([]float64, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: partial knowledge requires a non-empty target set")
	}
	d := pr.Domain
	isTarget := make([]bool, d)
	for _, t := range targets {
		if t < 0 || t >= d {
			return nil, fmt.Errorf("core: target %d outside domain [0,%d)", t, d)
		}
		if isTarget[t] {
			return nil, fmt.Errorf("core: duplicate target %d", t)
		}
		isTarget[t] = true
	}
	sum, err := MaliciousSum(pr)
	if err != nil {
		return nil, err
	}
	nonTargets := d - len(targets)
	malicious := make([]float64, d)
	if nonTargets == 0 {
		// T = D: everything is a target; spread the whole sum uniformly.
		share := sum / float64(d)
		for v := range malicious {
			malicious[v] = share
		}
		return malicious, nil
	}
	// Eq. 28: Σ_{v∈D'} f̃_Y = -q·d/(p-q), spread uniformly over D'.
	nonTargetSum := -pr.Q * float64(d) / (pr.P - pr.Q)
	nonTargetShare := nonTargetSum / float64(nonTargets)
	// Eq. 29: the target set carries the remainder, spread uniformly.
	targetShare := (sum - nonTargetSum) / float64(len(targets))
	for v := range malicious {
		if isTarget[v] {
			malicious[v] = targetShare
		} else {
			malicious[v] = nonTargetShare
		}
	}
	return malicious, nil
}
