package core

import (
	"errors"
	"fmt"
	"sort"

	"ldprecover/internal/stats"
)

// Refiner maps an estimated genuine-frequency vector onto the probability
// simplex, enforcing conditions (22) and (23): non-negativity and
// sum-to-one.
type Refiner func(estimate []float64) ([]float64, error)

// RefineKKT is Algorithm 1's refinement loop (Eq. 32–35): starting from
// the full domain, repeatedly distribute the sum-to-one correction
// uniformly over the active set D* and demote items that go negative,
// until all active items are non-negative. The loop terminates in at most
// d iterations because demoted items never return and a singleton active
// set is always feasible.
func RefineKKT(estimate []float64) ([]float64, error) {
	if len(estimate) == 0 {
		return nil, errors.New("core: refine on empty vector")
	}
	if !stats.AllFinite(estimate) {
		return nil, errors.New("core: refine on non-finite vector")
	}
	d := len(estimate)
	active := make([]bool, d)
	for v := range active {
		active[v] = true
	}
	nActive := d
	out := make([]float64, d)
	for iter := 0; iter < d; iter++ {
		// Eq. 34–35: mu/2 = (Σ_{D*} f̃ - 1)/|D*|; f'(v) = f̃(v) - mu/2.
		var sum float64
		for v := range estimate {
			if active[v] {
				sum += estimate[v]
			}
		}
		shift := (sum - 1) / float64(nActive)
		anyNegative := false
		for v := range estimate {
			if !active[v] {
				out[v] = 0
				continue
			}
			out[v] = estimate[v] - shift
			if out[v] < 0 {
				active[v] = false
				nActive--
				anyNegative = true
			}
		}
		if !anyNegative {
			return out, nil
		}
		if nActive == 0 {
			// Unreachable for finite input (a singleton active set yields
			// exactly 1), but guard against float pathologies.
			return nil, errors.New("core: refinement emptied the active set")
		}
	}
	// Loop invariant guarantees convergence within d rounds; reaching here
	// means the invariant broke (e.g. NaN slipped through).
	return nil, errors.New("core: refinement failed to converge")
}

// ProjectSimplex is the exact Euclidean projection onto the probability
// simplex via the standard sort-and-threshold algorithm. It computes the
// same point as RefineKKT (the paper's CI problem has a unique optimum;
// the package tests verify the equivalence) in O(d log d) with a single
// pass.
func ProjectSimplex(estimate []float64) ([]float64, error) {
	if len(estimate) == 0 {
		return nil, errors.New("core: project on empty vector")
	}
	if !stats.AllFinite(estimate) {
		return nil, errors.New("core: project on non-finite vector")
	}
	d := len(estimate)
	sorted := append([]float64(nil), estimate...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cumsum, tau float64
	rho := 0
	for j := 0; j < d; j++ {
		cumsum += sorted[j]
		t := (cumsum - 1) / float64(j+1)
		if sorted[j]-t > 0 {
			rho = j + 1
			tau = t
		}
	}
	if rho == 0 {
		return nil, fmt.Errorf("core: simplex projection found no support (max=%v)", sorted[0])
	}
	out := make([]float64, d)
	for v, f := range estimate {
		if f > tau {
			out[v] = f - tau
		}
	}
	return out, nil
}
