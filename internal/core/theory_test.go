package core

import (
	"math"
	"testing"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

func TestGenuineDistributionFormula(t *testing.T) {
	pr := grrParams(102, 0.5)
	const n = int64(389894)
	f := 0.1
	dist, err := GenuineDistribution(f, pr, n)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Mu != f {
		t.Fatalf("mu %v want %v", dist.Mu, f)
	}
	pq := pr.P - pr.Q
	want := pr.Q*(1-pr.Q)/(float64(n)*pq*pq) + f*(1-pr.P-pr.Q)/(float64(n)*pq)
	if math.Abs(dist.Sigma2-want) > 1e-15 {
		t.Fatalf("sigma2 %v want %v", dist.Sigma2, want)
	}
}

func TestGenuineDistributionValidation(t *testing.T) {
	pr := grrParams(10, 0.5)
	if _, err := GenuineDistribution(-0.1, pr, 100); err == nil {
		t.Fatal("negative f accepted")
	}
	if _, err := GenuineDistribution(0.5, pr, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := GenuineDistribution(0.5, Params{}, 100); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestMaliciousDistributionFormula(t *testing.T) {
	pr := oueParams(50, 0.5)
	const m = int64(2000)
	pv := 0.3
	dist, err := MaliciousDistribution(pv, pr, m)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 / (pr.P - pr.Q)
	if math.Abs(dist.Mu-(pv-pr.Q)*scale) > 1e-12 {
		t.Fatalf("mu %v", dist.Mu)
	}
	wantVar := pv * (1 - pv) * scale * scale / float64(m)
	if math.Abs(dist.Sigma2-wantVar) > 1e-12 {
		t.Fatalf("sigma2 %v want %v", dist.Sigma2, wantVar)
	}
	if _, err := MaliciousDistribution(1.5, pr, m); err == nil {
		t.Fatal("pv > 1 accepted")
	}
	if _, err := MaliciousDistribution(0.5, pr, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestPoisonedDistributionTheorem1(t *testing.T) {
	gen := Normal{Mu: 0.1, Sigma2: 4e-6}
	mal := Normal{Mu: 2.0, Sigma2: 1e-4}
	eta := 0.25
	dist, err := PoisonedDistribution(gen, mal, eta)
	if err != nil {
		t.Fatal(err)
	}
	k := 1.25
	if math.Abs(dist.Mu-(0.1/k+0.25*2.0/k)) > 1e-12 {
		t.Fatalf("mu %v", dist.Mu)
	}
	if math.Abs(dist.Sigma2-(4e-6/(k*k)+0.0625*1e-4/(k*k))) > 1e-15 {
		t.Fatalf("sigma2 %v", dist.Sigma2)
	}
	if _, err := PoisonedDistribution(gen, mal, -1); err == nil {
		t.Fatal("negative eta accepted")
	}
}

// TestLemma2EmpiricalVariance simulates genuine aggregation and checks the
// estimator's empirical variance against Lemma 2 / Theorem 3.
func TestLemma2EmpiricalVariance(t *testing.T) {
	pr := grrParams(10, 0.8)
	const n = int64(5000)
	f := 0.2
	dist, err := GenuineDistribution(f, pr, n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(55)
	const trials = 3000
	est := make([]float64, trials)
	for i := range est {
		// Simulate C(v) = Binomial(n_v, p) + Binomial(n - n_v, q) and
		// unbias — the per-item marginal of any pure protocol.
		nv := int64(f * float64(n))
		c := r.Binomial(nv, pr.P) + r.Binomial(n-nv, pr.Q)
		est[i] = (float64(c) - float64(n)*pr.Q) / (float64(n) * (pr.P - pr.Q))
	}
	gotVar := stats.SampleVariance(est)
	if gotVar < dist.Sigma2*0.85 || gotVar > dist.Sigma2*1.15 {
		t.Fatalf("empirical variance %v want %v", gotVar, dist.Sigma2)
	}
	gotMu := stats.Mean(est)
	if math.Abs(gotMu-f) > 4*math.Sqrt(dist.Sigma2/trials) {
		t.Fatalf("empirical mean %v want %v", gotMu, f)
	}
}

// TestTheorem2EstimatorUnbiased verifies E[f̃_X] = f_X through the full
// estimator: simulate poisoned mixtures and recover with the true
// malicious frequencies.
func TestTheorem2EstimatorUnbiased(t *testing.T) {
	pr := oueParams(6, 0.8)
	const n, m = int64(4000), int64(800)
	eta := float64(m) / float64(n)
	f := 0.3  // genuine frequency of the item under test
	pv := 0.9 // malicious support probability for that item
	r := rng.New(66)
	const trials = 3000
	est := make([]float64, trials)
	for i := range est {
		nv := int64(f * float64(n))
		cGen := r.Binomial(nv, pr.P) + r.Binomial(n-nv, pr.Q)
		cMal := r.Binomial(m, pv)
		total := n + m
		fz := (float64(cGen+cMal) - float64(total)*pr.Q) / (float64(total) * (pr.P - pr.Q))
		fy := (float64(cMal) - float64(m)*pr.Q) / (float64(m) * (pr.P - pr.Q))
		est[i] = (1+eta)*fz - eta*fy
	}
	mu := stats.Mean(est)
	genDist, _ := GenuineDistribution(f, pr, n)
	se := math.Sqrt(genDist.Sigma2 / trials)
	if math.Abs(mu-f) > 6*se {
		t.Fatalf("estimator mean %v want %v (se %v)", mu, f, se)
	}
	// Theorem 3: variance ~ sigma_x^2. The estimator also subtracts the
	// (independent, re-measured) malicious estimate, so allow slack above.
	v := stats.SampleVariance(est)
	if v < genDist.Sigma2*0.8 {
		t.Fatalf("estimator variance %v below sigma_x^2 %v", v, genDist.Sigma2)
	}
}

func TestEstimatorVarianceMatchesLemma2(t *testing.T) {
	pr := grrParams(20, 0.5)
	v1, err := EstimatorVariance(0.25, pr, 10000)
	if err != nil {
		t.Fatal(err)
	}
	dist, _ := GenuineDistribution(0.25, pr, 10000)
	if v1 != dist.Sigma2 {
		t.Fatalf("EstimatorVariance %v != Lemma2 %v", v1, dist.Sigma2)
	}
}

func TestBerryEsseenBoundsShrink(t *testing.T) {
	pr := grrParams(102, 0.5)
	b1, err := MaliciousApproxError(0.1, pr, 100)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := MaliciousApproxError(0.1, pr, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !(b1 > b2) || b2 <= 0 {
		t.Fatalf("malicious bound not shrinking: %v -> %v", b1, b2)
	}
	if math.Abs(b1/b2-10) > 1e-9 {
		t.Fatalf("bound not O(1/sqrt(m)): ratio %v", b1/b2)
	}

	g1, err := GenuineApproxError(0.1, pr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenuineApproxError(0.1, pr, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !(g1 > g2) || g2 <= 0 {
		t.Fatalf("genuine bound not shrinking: %v -> %v", g1, g2)
	}
}

func TestBerryEsseenValidation(t *testing.T) {
	pr := grrParams(10, 0.5)
	if _, err := MaliciousApproxError(0, pr, 100); err == nil {
		t.Fatal("pv=0 accepted")
	}
	if _, err := MaliciousApproxError(0.5, pr, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := GenuineApproxError(2, pr, 100); err == nil {
		t.Fatal("f=2 accepted")
	}
	if _, err := GenuineApproxError(0.5, pr, -1); err == nil {
		t.Fatal("n<0 accepted")
	}
}

// TestBerryEsseenEmpirical: the actual sup-CDF distance between the
// empirical distribution of f̃_Y(v) and its normal approximation must lie
// below Theorem 4's bound.
func TestBerryEsseenEmpirical(t *testing.T) {
	pr := grrParams(10, 0.5)
	const m = int64(500)
	pv := 0.3
	bound, err := MaliciousApproxError(pv, pr, m)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := MaliciousDistribution(pv, pr, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	const trials = 4000
	sample := make([]float64, trials)
	for i := range sample {
		c := r.Binomial(m, pv)
		sample[i] = (float64(c) - float64(m)*pr.Q) / (float64(m) * (pr.P - pr.Q))
	}
	sigma := math.Sqrt(dist.Sigma2)
	d, err := stats.KSStatistic(sample, func(x float64) float64 {
		return stats.NormalCDF(x, dist.Mu, sigma)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The KS distance includes sampling error ~1/sqrt(trials); add it.
	slack := 2 / math.Sqrt(float64(trials))
	if d > bound+slack {
		t.Fatalf("empirical CDF distance %v exceeds Berry–Esseen bound %v", d, bound)
	}
}
