package core

import (
	"errors"
	"fmt"

	"ldprecover/internal/stats"
)

// DefaultEta is the paper's default recovery parameter η = m/n. The server
// does not know the true ratio; §VI-A.4 sets a deliberately generous 0.2
// (well above the default attack's β/(1-β) ≈ 0.053) and §VI-D shows
// recovery degrades gracefully under η misspecification.
const DefaultEta = 0.2

// Options configures a recovery run.
type Options struct {
	// Eta is the assumed malicious-to-genuine user ratio η. Zero means
	// DefaultEta; to run the estimator with a literal η=0 (no deduction)
	// use a tiny positive value.
	Eta float64
	// Targets, when non-nil, switches to partial-knowledge recovery
	// (LDPRecover*): the attacker-selected items of Eq. 28–31.
	Targets []int
	// MaliciousOverride, when non-nil, bypasses malicious-frequency
	// learning and uses the supplied per-item malicious frequency vector
	// f̃_Y directly. This is the integration hook for defenses that
	// estimate malicious statistics externally, e.g. the k-means defense
	// of §VII-B (LDPRecover-KM).
	MaliciousOverride []float64
	// Refiner solves the final CI projection; nil means RefineKKT
	// (Algorithm 1).
	Refiner Refiner
	// SkipRefine returns the raw estimator output without projecting onto
	// the simplex — ablation and diagnostics only.
	SkipRefine bool
}

// Result carries the recovery outputs.
type Result struct {
	// Frequencies is the recovered frequency vector f'_X̃: non-negative,
	// summing to one (unless SkipRefine was set).
	Frequencies []float64
	// EstimatedGenuine is the pre-refinement estimator output f̃_X (Eq. 27
	// or Eq. 31).
	EstimatedGenuine []float64
	// Malicious is the malicious frequency estimate f̃'_Y / f̃*_Y used by
	// the estimator.
	Malicious []float64
	// MaliciousSum is the learnt summation Σ_v f̃_Y(v) (Eq. 21).
	MaliciousSum float64
	// Eta is the η actually used.
	Eta float64
	// PartialKnowledge records whether target information was used.
	PartialKnowledge bool
}

// Recover runs LDPRecover (Algorithm 1) on a poisoned frequency vector
// aggregated under the protocol described by pr. With opts.Targets set it
// runs LDPRecover*; with opts.MaliciousOverride set it uses externally
// learnt malicious statistics (LDPRecover-KM).
func Recover(poisoned []float64, pr Params, opts Options) (*Result, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if len(poisoned) != pr.Domain {
		return nil, fmt.Errorf("core: poisoned vector length %d, domain %d",
			len(poisoned), pr.Domain)
	}
	if !stats.AllFinite(poisoned) {
		return nil, errors.New("core: poisoned vector contains NaN or Inf")
	}
	eta := opts.Eta
	if eta == 0 {
		eta = DefaultEta
	}
	if eta < 0 {
		return nil, fmt.Errorf("core: negative eta %v", eta)
	}

	sum, err := MaliciousSum(pr)
	if err != nil {
		return nil, err
	}

	// Step 2: malicious frequency learning (or external override).
	var malicious []float64
	partial := false
	switch {
	case opts.MaliciousOverride != nil:
		if len(opts.MaliciousOverride) != pr.Domain {
			return nil, fmt.Errorf("core: malicious override length %d, domain %d",
				len(opts.MaliciousOverride), pr.Domain)
		}
		if !stats.AllFinite(opts.MaliciousOverride) {
			return nil, errors.New("core: malicious override contains NaN or Inf")
		}
		malicious = append([]float64(nil), opts.MaliciousOverride...)
		sum = stats.Sum(malicious)
	case opts.Targets != nil:
		malicious, err = PartialKnowledgeMalicious(opts.Targets, pr)
		if err != nil {
			return nil, err
		}
		partial = true
	default:
		malicious, _, err = NonKnowledgeMalicious(poisoned, pr)
		if err != nil {
			return nil, err
		}
	}

	// Step 1: genuine frequency estimator (Eq. 27 / Eq. 31).
	estimate, err := EstimateGenuine(poisoned, malicious, eta)
	if err != nil {
		return nil, err
	}

	res := &Result{
		EstimatedGenuine: estimate,
		Malicious:        malicious,
		MaliciousSum:     sum,
		Eta:              eta,
		PartialKnowledge: partial,
	}
	if opts.SkipRefine {
		res.Frequencies = append([]float64(nil), estimate...)
		return res, nil
	}

	// Step 3: CI refinement.
	refiner := opts.Refiner
	if refiner == nil {
		refiner = RefineKKT
	}
	refined, err := refiner(estimate)
	if err != nil {
		return nil, fmt.Errorf("core: refinement: %w", err)
	}
	res.Frequencies = refined
	return res, nil
}
