package core

import (
	"math"
	"testing"
	"testing/quick"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

// randomParams draws a valid Params triple.
func randomParams(r *rng.Rand) Params {
	d := r.Intn(98) + 2
	q := 0.01 + 0.5*r.Float64()
	p := q + 0.01 + (0.98-q)*r.Float64()
	if p > 1 {
		p = 1
	}
	return Params{P: p, Q: q, Domain: d}
}

// TestPartialAllocationSumsProperty: for any valid parameters and target
// set, the partial-knowledge allocation must sum exactly to the learnt
// malicious summation (Eq. 29 conservation).
func TestPartialAllocationSumsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pr := randomParams(r)
		k := r.Intn(pr.Domain) + 1
		targets := r.Sample(pr.Domain, k)
		mal, err := PartialKnowledgeMalicious(targets, pr)
		if err != nil {
			return false
		}
		want, err := MaliciousSum(pr)
		if err != nil {
			return false
		}
		return math.Abs(stats.Sum(mal)-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestNonKnowledgeAllocationSumsProperty: same conservation for the
// non-knowledge allocation over any poisoned vector.
func TestNonKnowledgeAllocationSumsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pr := randomParams(r)
		poisoned := make([]float64, pr.Domain)
		for v := range poisoned {
			poisoned[v] = 3 * (r.Float64() - 0.4)
		}
		mal, _, err := NonKnowledgeMalicious(poisoned, pr)
		if err != nil {
			return false
		}
		want, err := MaliciousSum(pr)
		if err != nil {
			return false
		}
		return math.Abs(stats.Sum(mal)-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverDeterministicProperty: identical inputs yield identical
// outputs (no hidden randomness in the recovery path).
func TestRecoverDeterministicProperty(t *testing.T) {
	f := func(seed uint64, etaRaw uint8, partial bool) bool {
		r := rng.New(seed)
		pr := randomParams(r)
		poisoned := make([]float64, pr.Domain)
		for v := range poisoned {
			poisoned[v] = 2 * (r.Float64() - 0.3)
		}
		opts := Options{Eta: 0.01 + float64(etaRaw%40)/100}
		if partial {
			k := r.Intn(pr.Domain) + 1
			opts.Targets = r.Sample(pr.Domain, k)
		}
		a, err1 := Recover(poisoned, pr, opts)
		b, err2 := Recover(poisoned, pr, opts)
		if err1 != nil || err2 != nil {
			return false
		}
		for v := range a.Frequencies {
			if a.Frequencies[v] != b.Frequencies[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimatorUniformShiftInvarianceProperty: adding a constant to both
// channels shifts the estimator by the same constant (affinity), which is
// what makes the method robust to misspecified malicious totals after
// projection.
func TestEstimatorUniformShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint64, cRaw int8) bool {
		r := rng.New(seed)
		d := r.Intn(50) + 2
		c := float64(cRaw) / 16
		eta := 0.1 + r.Float64()/2
		poisoned := make([]float64, d)
		malicious := make([]float64, d)
		for v := range poisoned {
			poisoned[v] = r.Float64()
			malicious[v] = 2 * (r.Float64() - 0.5)
		}
		base, err := EstimateGenuine(poisoned, malicious, eta)
		if err != nil {
			return false
		}
		shiftedP := make([]float64, d)
		for v := range shiftedP {
			shiftedP[v] = poisoned[v] + c
		}
		shifted, err := EstimateGenuine(shiftedP, malicious, eta)
		if err != nil {
			return false
		}
		for v := range base {
			if math.Abs(shifted[v]-base[v]-(1+eta)*c) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRefineTranslationInvarianceProperty: projecting x and x + c·1 onto
// the simplex yields the same point (the sum constraint absorbs uniform
// shifts) — the mechanism behind LDPRecover's robustness to the learnt
// malicious total.
func TestRefineTranslationInvarianceProperty(t *testing.T) {
	f := func(seed uint64, cRaw int8) bool {
		r := rng.New(seed)
		d := r.Intn(40) + 2
		c := float64(cRaw) / 8
		x := make([]float64, d)
		y := make([]float64, d)
		for v := range x {
			x[v] = 4 * (r.Float64() - 0.5)
			y[v] = x[v] + c
		}
		px, err1 := RefineKKT(x)
		py, err2 := RefineKKT(y)
		if err1 != nil || err2 != nil {
			return false
		}
		for v := range px {
			if math.Abs(px[v]-py[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
