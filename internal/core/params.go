// Package core implements LDPRecover, the paper's contribution: recovery
// of genuine aggregated frequencies from frequencies poisoned by malicious
// users, without knowledge of the attack (§V).
//
// The pipeline follows the paper's three steps. Step 1 is the genuine
// frequency estimator f̃_X = (1+η)·f̃_Z − η·f̃_Y (Eq. 19), whose asymptotic
// moments (Lemmas 1–2, Theorems 1–3) and Berry–Esseen approximation error
// (Theorems 4–5) live in theory.go. Step 2 learns the summation of
// malicious frequencies from the protocol's aggregation probabilities
// alone (Eq. 21), with the non-knowledge allocation of Eq. 26 or the
// partial-knowledge allocation of Eq. 30 when the attacker's target items
// are known (LDPRecover*). Step 3 solves the constraint-inference problem
// by the iterative KKT refinement of Algorithm 1 (equivalently, Euclidean
// projection onto the probability simplex).
//
// The package depends only on the stats substrate; protocol objects are
// reduced to the aggregation triple (p, q, d) via Params.
package core

import (
	"fmt"
	"math"
)

// Params is the aggregation-side description of the LDP protocol the
// poisoned frequencies came from: Eq. (11)'s p and q and the domain size.
// For GRR p = e^ε/(d-1+e^ε), q = 1/(d-1+e^ε); for OUE p = 1/2,
// q = 1/(e^ε+1); for OLH p = e^ε/(e^ε+g-1), q = 1/g.
type Params struct {
	// P is the probability a report supports its true item.
	P float64
	// Q is the probability a report supports any other given item.
	Q float64
	// Domain is the number of items d.
	Domain int
}

// Validate checks the parameter triple.
func (p Params) Validate() error {
	if p.Domain < 2 {
		return fmt.Errorf("core: domain %d < 2", p.Domain)
	}
	if math.IsNaN(p.P) || math.IsNaN(p.Q) ||
		!(p.P > p.Q) || p.P <= 0 || p.P > 1 || p.Q < 0 || p.Q >= 1 {
		return fmt.Errorf("core: invalid probabilities p=%v q=%v", p.P, p.Q)
	}
	return nil
}
