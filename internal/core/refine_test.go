package core

import (
	"math"
	"testing"
	"testing/quick"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

func onSimplex(t *testing.T, fs []float64, tol float64) {
	t.Helper()
	for v, f := range fs {
		if f < -tol {
			t.Fatalf("negative frequency %v at %d", f, v)
		}
	}
	if s := stats.Sum(fs); math.Abs(s-1) > tol {
		t.Fatalf("frequencies sum to %v", s)
	}
}

func TestRefineKKTAlreadyOnSimplex(t *testing.T) {
	in := []float64{0.2, 0.3, 0.5}
	out, err := RefineKKT(in)
	if err != nil {
		t.Fatal(err)
	}
	for v := range in {
		if math.Abs(out[v]-in[v]) > 1e-12 {
			t.Fatalf("simplex point moved: %v -> %v", in, out)
		}
	}
}

func TestRefineKKTUniformShiftRemoved(t *testing.T) {
	// Adding a constant c to a simplex point must be undone exactly (no
	// clipping occurs when all entries stay positive).
	in := []float64{0.2 + 5, 0.3 + 5, 0.5 + 5}
	out, err := RefineKKT(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.3, 0.5}
	for v := range want {
		if math.Abs(out[v]-want[v]) > 1e-9 {
			t.Fatalf("out %v want %v", out, want)
		}
	}
}

func TestRefineKKTClipsNegatives(t *testing.T) {
	in := []float64{-5, 0.4, 0.8}
	out, err := RefineKKT(in)
	if err != nil {
		t.Fatal(err)
	}
	onSimplex(t, out, 1e-9)
	if out[0] != 0 {
		t.Fatalf("strongly negative item kept mass %v", out[0])
	}
	if out[2] <= out[1] {
		t.Fatal("order not preserved")
	}
}

func TestRefineKKTSingleton(t *testing.T) {
	out, err := RefineKKT([]float64{-3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("singleton refinement %v want [1]", out)
	}
}

func TestRefineErrors(t *testing.T) {
	if _, err := RefineKKT(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := RefineKKT([]float64{math.NaN(), 1}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := ProjectSimplex(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ProjectSimplex([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestProjectSimplexKnown(t *testing.T) {
	// Projection of (1,1) is (0.5,0.5); of (2,0) is (1,0).
	out, err := ProjectSimplex([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Fatalf("out %v", out)
	}
	out, err = ProjectSimplex([]float64{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 1e-12 || out[1] != 0 {
		t.Fatalf("out %v", out)
	}
}

// TestRefineEqualsProjection: Algorithm 1's iterative KKT refinement must
// compute the exact Euclidean projection (the CI problem's unique
// optimum). Property-tested over random vectors.
func TestRefineEqualsProjection(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		r := rng.New(seed)
		d := int(dRaw%60) + 1
		in := make([]float64, d)
		for v := range in {
			in[v] = 4 * (r.Float64() - 0.5) // mixed signs, magnitude ~2
		}
		kkt, err1 := RefineKKT(in)
		proj, err2 := ProjectSimplex(in)
		if err1 != nil || err2 != nil {
			return false
		}
		for v := range kkt {
			if math.Abs(kkt[v]-proj[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRefineInvariantsProperty: output is on the simplex, idempotent, and
// order-preserving.
func TestRefineInvariantsProperty(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		r := rng.New(seed)
		d := int(dRaw%60) + 2
		in := make([]float64, d)
		for v := range in {
			in[v] = 10 * (r.Float64() - 0.3)
		}
		out, err := RefineKKT(in)
		if err != nil {
			return false
		}
		// Simplex.
		var sum float64
		for _, f := range out {
			if f < 0 {
				return false
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Idempotent.
		again, err := RefineKKT(out)
		if err != nil {
			return false
		}
		for v := range out {
			if math.Abs(again[v]-out[v]) > 1e-9 {
				return false
			}
		}
		// Order preserving.
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				if in[a] > in[b] && out[a] < out[b]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestProjectionMinimizesL2 cross-checks optimality on small domains by
// comparing against dense sampling of feasible simplex points.
func TestProjectionMinimizesL2(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 50; trial++ {
		in := []float64{4 * (r.Float64() - 0.5), 4 * (r.Float64() - 0.5), 4 * (r.Float64() - 0.5)}
		opt, err := RefineKKT(in)
		if err != nil {
			t.Fatal(err)
		}
		optDist := distSq(opt, in)
		// Random feasible candidates must not beat the projection.
		for probe := 0; probe < 200; probe++ {
			a, b := r.Float64(), r.Float64()
			if a+b > 1 {
				a, b = 1-a, 1-b
			}
			cand := []float64{a, b, 1 - a - b}
			if distSq(cand, in) < optDist-1e-9 {
				t.Fatalf("candidate %v beats projection %v of %v", cand, opt, in)
			}
		}
	}
}

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
