package core

import (
	"fmt"
	"math"

	"ldprecover/internal/stats"
)

// This file implements the paper's analytical framework (§V-B, §V-E):
// the asymptotic moments of the malicious, genuine and poisoned frequency
// distributions (Lemmas 1–2, Theorem 1), the estimator's moments
// (Theorems 2–3) and the Berry–Esseen approximation-error bounds
// (Theorems 4–5). The experiment suite uses these to validate the
// implementation against theory, and servers can use them to reason about
// recovery error at a given population size.

// Normal is a mean/variance pair describing an asymptotic distribution.
type Normal struct {
	Mu     float64
	Sigma2 float64
}

// perSampleMoments returns the mean, variance and absolute third central
// moment of the single-report estimate Φ_{ε,y}(v) = (1_{S}(v) - q)/(p-q)
// when the report supports item v with probability theta.
func perSampleMoments(theta float64, pr Params) (mu, sigma2, g float64) {
	scale := 1 / (pr.P - pr.Q)
	mu = (theta - pr.Q) * scale
	sigma2 = theta * (1 - theta) * scale * scale
	// E|B-θ|^3 for a Bernoulli(θ) is θ(1-θ)[(1-θ)²+θ²].
	g = theta * (1 - theta) * ((1-theta)*(1-theta) + theta*theta) * math.Abs(scale*scale*scale)
	return mu, sigma2, g
}

// MaliciousDistribution returns the asymptotic distribution of f̃_Y(v)
// (Lemma 1) for an adaptive attacker whose crafted reports support item v
// with probability pv, across m malicious users:
//
//	f̃_Y(v) → N(μ_y, σ_y²),  μ_y = E[Φ_{ε,y}(v)],  σ_y² = Var[Φ_{ε,y}(v)]/m
func MaliciousDistribution(pv float64, pr Params, m int64) (Normal, error) {
	if err := pr.Validate(); err != nil {
		return Normal{}, err
	}
	if pv < 0 || pv > 1 || math.IsNaN(pv) {
		return Normal{}, fmt.Errorf("core: invalid support probability %v", pv)
	}
	if m <= 0 {
		return Normal{}, fmt.Errorf("core: invalid malicious count %d", m)
	}
	mu, sigma2, _ := perSampleMoments(pv, pr)
	return Normal{Mu: mu, Sigma2: sigma2 / float64(m)}, nil
}

// GenuineDistribution returns the asymptotic distribution of f̃_X̃(v)
// (Lemma 2) for an item with true frequency f among n genuine users:
//
//	μ_x = f,  σ_x² = q(1-q)/(n(p-q)²) + f(1-p-q)/(n(p-q))
func GenuineDistribution(f float64, pr Params, n int64) (Normal, error) {
	if err := pr.Validate(); err != nil {
		return Normal{}, err
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return Normal{}, fmt.Errorf("core: invalid frequency %v", f)
	}
	if n <= 0 {
		return Normal{}, fmt.Errorf("core: invalid genuine count %d", n)
	}
	nn := float64(n)
	pq := pr.P - pr.Q
	sigma2 := pr.Q*(1-pr.Q)/(nn*pq*pq) + f*(1-pr.P-pr.Q)/(nn*pq)
	return Normal{Mu: f, Sigma2: sigma2}, nil
}

// PoisonedDistribution combines Lemmas 1 and 2 into Theorem 1: with
// η = m/n,
//
//	μ_z = μ_x/(1+η) + η·μ_y/(1+η)
//	σ_z² = σ_x²/(1+η)² + η²·σ_y²/(1+η)²
func PoisonedDistribution(genuine, malicious Normal, eta float64) (Normal, error) {
	if eta < 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return Normal{}, fmt.Errorf("core: invalid eta %v", eta)
	}
	k := 1 + eta
	return Normal{
		Mu:     genuine.Mu/k + eta*malicious.Mu/k,
		Sigma2: genuine.Sigma2/(k*k) + eta*eta*malicious.Sigma2/(k*k),
	}, nil
}

// EstimatorVariance returns the approximate variance of the genuine
// frequency estimator (Theorem 3), which equals σ_x² from Lemma 2: the
// estimator is approximately unbiased (Theorem 2) with the genuine
// aggregation's own variance.
func EstimatorVariance(f float64, pr Params, n int64) (float64, error) {
	dist, err := GenuineDistribution(f, pr, n)
	if err != nil {
		return 0, err
	}
	return dist.Sigma2, nil
}

// MaliciousApproxError returns Theorem 4's Berry–Esseen bound on the sup
// distance between the true CDF of f̃_Y(v) and its normal approximation,
// for crafted reports supporting v with probability pv across m users.
func MaliciousApproxError(pv float64, pr Params, m int64) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if pv <= 0 || pv >= 1 || math.IsNaN(pv) {
		return 0, fmt.Errorf("core: support probability %v must be in (0,1) for a CLT bound", pv)
	}
	if m <= 0 {
		return 0, fmt.Errorf("core: invalid malicious count %d", m)
	}
	_, sigma2, g := perSampleMoments(pv, pr)
	return stats.BerryEsseen(g, math.Sqrt(sigma2), m), nil
}

// GenuineApproxError returns Theorem 5's Berry–Esseen bound for f̃_X̃(v):
// a genuine report supports item v with probability θ = f·p + (1-f)·q.
func GenuineApproxError(f float64, pr Params, n int64) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, fmt.Errorf("core: invalid frequency %v", f)
	}
	if n <= 0 {
		return 0, fmt.Errorf("core: invalid genuine count %d", n)
	}
	theta := f*pr.P + (1-f)*pr.Q
	if theta <= 0 || theta >= 1 {
		return 0, fmt.Errorf("core: degenerate support probability %v", theta)
	}
	_, sigma2, g := perSampleMoments(theta, pr)
	return stats.BerryEsseen(g, math.Sqrt(sigma2), n), nil
}
