package core

import (
	"errors"
	"fmt"
	"math"

	"ldprecover/internal/stats"
)

// EstimateGenuine applies the genuine frequency estimator (Eq. 19)
// pointwise:
//
//	f̃_X(v) = (1+η)·f̃_Z(v) − η·f̃_Y(v)
//
// where poisoned is f̃_Z, malicious is (an estimate of) f̃_Y, and eta is
// the assumed ratio m/n of malicious to genuine users. The paper shows
// (§VI-D) that overestimating η is safe, so servers use a generous default.
func EstimateGenuine(poisoned, malicious []float64, eta float64) ([]float64, error) {
	if len(poisoned) != len(malicious) {
		return nil, fmt.Errorf("core: poisoned length %d, malicious length %d",
			len(poisoned), len(malicious))
	}
	if len(poisoned) == 0 {
		return nil, errors.New("core: empty frequency vectors")
	}
	if eta < 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return nil, fmt.Errorf("core: invalid eta %v", eta)
	}
	if !stats.AllFinite(poisoned) || !stats.AllFinite(malicious) {
		return nil, errors.New("core: non-finite frequencies")
	}
	out := make([]float64, len(poisoned))
	for v := range poisoned {
		out[v] = (1+eta)*poisoned[v] - eta*malicious[v]
	}
	return out, nil
}

// InvertEstimate recovers f̃_Z from f̃_X and f̃_Y — the algebraic inverse
// of EstimateGenuine, used by tests and by consistency checks:
//
//	f̃_Z(v) = (f̃_X(v) + η·f̃_Y(v)) / (1+η)
func InvertEstimate(genuine, malicious []float64, eta float64) ([]float64, error) {
	if len(genuine) != len(malicious) {
		return nil, fmt.Errorf("core: genuine length %d, malicious length %d",
			len(genuine), len(malicious))
	}
	if eta < 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return nil, fmt.Errorf("core: invalid eta %v", eta)
	}
	out := make([]float64, len(genuine))
	for v := range genuine {
		out[v] = (genuine[v] + eta*malicious[v]) / (1 + eta)
	}
	return out, nil
}
