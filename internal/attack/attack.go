// Package attack implements the poisoning attacks the paper defends
// against: the untargeted Manip attack (Cheu et al., S&P'21), the targeted
// MGA attack (Cao et al., USENIX Security'21) with its per-protocol report
// crafting, the paper's own adaptive attack AA (§V-C), the input-poisoning
// variant MGA-IPA (§VII-B), and the multi-attacker composition (§VII-C).
//
// Every attack offers two crafting paths mirroring package ldp: report
// level (exact, materializes one report per malicious user) and count
// level (fast, samples the aggregated support counts directly). In both,
// malicious users send attacker-crafted encoded data straight to the
// server, bypassing perturbation — the general poisoning model of §IV-A —
// except for IPA attacks, which honestly perturb attacker-chosen inputs.
package attack

import (
	"errors"
	"fmt"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// Attack crafts the data sent by m malicious users under a given protocol.
type Attack interface {
	// Name returns a short attack identifier ("Manip", "MGA", "AA", ...).
	Name() string
	// CraftReports returns one crafted report per malicious user.
	CraftReports(r *rng.Rand, p ldp.Protocol, m int64) ([]ldp.Report, error)
	// CraftCounts returns the aggregated support counts of m crafted
	// reports without materializing them.
	CraftCounts(r *rng.Rand, p ldp.Protocol, m int64) ([]int64, error)
}

// Targeted is implemented by attacks that promote specific items; the
// Detection baseline and LDPRecover* consume the target set.
type Targeted interface {
	Targets() []int
}

var errNilRand = errors.New("attack: nil random generator")

func checkArgs(r *rng.Rand, p ldp.Protocol, m int64) error {
	if r == nil {
		return errNilRand
	}
	if p == nil {
		return errors.New("attack: nil protocol")
	}
	if m < 0 {
		return fmt.Errorf("attack: negative malicious user count %d", m)
	}
	return nil
}

// craftFromItems turns per-user sampled items into crafted reports using
// the protocol's CraftSupport primitive (the adaptive-attack sampling
// framework of §V-C: draw an item from the attacker's distribution, emit
// an encoded value supporting it).
func craftFromItems(r *rng.Rand, p ldp.Protocol, items []int) ([]ldp.Report, error) {
	reports := make([]ldp.Report, len(items))
	for i, v := range items {
		rep, err := p.CraftSupport(r, v)
		if err != nil {
			return nil, err
		}
		reports[i] = rep
	}
	return reports, nil
}

// countsFromItemCounts converts per-item malicious sample counts into
// aggregated support counts. For GRR and OUE the crafted reports support
// exactly the sampled item; for OLH each crafted report also collides
// with every other item independently with probability 1/g.
func countsFromItemCounts(r *rng.Rand, p ldp.Protocol, itemCounts []int64) ([]int64, error) {
	d := p.Params().Domain
	if len(itemCounts) != d {
		return nil, fmt.Errorf("attack: item count length %d, domain %d", len(itemCounts), d)
	}
	var m int64
	for _, c := range itemCounts {
		m += c
	}
	counts := make([]int64, d)
	switch p.(type) {
	case *ldp.OLH:
		q := p.Params().Q // 1/g
		for v, c := range itemCounts {
			counts[v] = c + r.Binomial(m-c, q)
		}
	default:
		copy(counts, itemCounts)
	}
	return counts, nil
}

// sampleItemCounts draws m items from dist and returns per-item counts.
// Two batch samplers cover the two regimes: for m below the domain size
// an alias table gives O(m) draws (large heavy-hitter-style domains, few
// malicious users); otherwise the conditional-binomial multinomial gives
// O(d) draws independent of m (paper-scale populations).
func sampleItemCounts(r *rng.Rand, dist []float64, m int64) ([]int64, error) {
	if m == 0 {
		return make([]int64, len(dist)), nil
	}
	if m < int64(len(dist)) {
		alias, err := rng.NewAlias(dist)
		if err != nil {
			return nil, err
		}
		return alias.PickMany(r, int(m)), nil
	}
	return r.Multinomial(m, dist), nil
}

// itemsFromCounts expands per-item counts into a shuffled item sequence.
func itemsFromCounts(r *rng.Rand, counts []int64) []int {
	var m int64
	for _, c := range counts {
		m += c
	}
	items := make([]int, 0, m)
	for v, c := range counts {
		for i := int64(0); i < c; i++ {
			items = append(items, v)
		}
	}
	r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items
}
