package attack

import (
	"math"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

func TestNewMGAValidation(t *testing.T) {
	if _, err := NewMGA(nil); err == nil {
		t.Fatal("empty targets accepted")
	}
	if _, err := NewMGA([]int{1, 1}); err == nil {
		t.Fatal("duplicate targets accepted")
	}
	if _, err := NewMGA([]int{-1}); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestMGATargetsCopied(t *testing.T) {
	ts := []int{1, 2, 3}
	a, _ := NewMGA(ts)
	got := a.Targets()
	got[0] = 99
	if a.Targets()[0] != 1 {
		t.Fatal("Targets aliases internal state")
	}
	ts[1] = 98
	if a.Targets()[1] != 2 {
		t.Fatal("constructor aliases caller slice")
	}
}

func TestRandomTargets(t *testing.T) {
	r := rng.New(2)
	ts, err := RandomTargets(r, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range ts {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid targets %v", ts)
		}
		seen[v] = true
	}
	if _, err := RandomTargets(r, 5, 6); err == nil {
		t.Fatal("r > d accepted")
	}
	if _, err := RandomTargets(nil, 5, 2); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestMGATargetOutsideDomain(t *testing.T) {
	a, _ := NewMGA([]int{50})
	grr, _ := ldp.NewGRR(10, 0.5)
	r := rng.New(1)
	if _, err := a.CraftReports(r, grr, 5); err == nil {
		t.Fatal("target outside domain accepted")
	}
}

func TestMGAGRRReportsOnlyTargets(t *testing.T) {
	targets := []int{3, 7, 11}
	a, _ := NewMGA(targets)
	grr, _ := ldp.NewGRR(20, 0.5)
	r := rng.New(3)
	reports, err := a.CraftReports(r, grr, 3000)
	if err != nil {
		t.Fatal(err)
	}
	isTarget := map[int]bool{3: true, 7: true, 11: true}
	perTarget := map[int]int{}
	for _, rep := range reports {
		v := int(rep.(ldp.GRRReport))
		if !isTarget[v] {
			t.Fatalf("MGA-GRR reported non-target %d", v)
		}
		perTarget[v]++
	}
	// Uniform across targets (1/r each).
	for _, tt := range targets {
		got := float64(perTarget[tt]) / 3000
		if math.Abs(got-1.0/3) > 0.05 {
			t.Fatalf("target %d rate %v want 1/3", tt, got)
		}
	}
}

func TestMGAOUEReportShape(t *testing.T) {
	const d, eps = 102, 0.5
	targets := []int{0, 5, 10, 15, 20, 25, 30, 35, 40, 45}
	a, _ := NewMGA(targets)
	oue, _ := ldp.NewOUE(d, eps)
	r := rng.New(4)
	reports, err := a.CraftReports(r, oue, 50)
	if err != nil {
		t.Fatal(err)
	}
	pr := oue.Params()
	wantOnes := int(math.Round(pr.P + float64(d-1)*pr.Q)) // honest expectation
	for _, rep := range reports {
		o := rep.(ldp.OUEReport)
		for _, tt := range targets {
			if !o.Bits.Get(tt) {
				t.Fatalf("MGA-OUE report missing target bit %d", tt)
			}
		}
		if got := o.Bits.Count(); got != wantOnes {
			t.Fatalf("MGA-OUE report has %d ones want %d", got, wantOnes)
		}
	}
}

func TestMGAOUEPadBitsVary(t *testing.T) {
	targets := []int{1}
	a, _ := NewMGA(targets)
	oue, _ := ldp.NewOUE(50, 0.5)
	r := rng.New(5)
	reports, _ := a.CraftReports(r, oue, 200)
	// Pads must be random: some non-target bit should differ across reports.
	first := reports[0].(ldp.OUEReport)
	same := true
	for _, rep := range reports[1:] {
		o := rep.(ldp.OUEReport)
		for v := 0; v < 50; v++ {
			if o.Bits.Get(v) != first.Bits.Get(v) {
				same = false
				break
			}
		}
		if !same {
			break
		}
	}
	if same {
		t.Fatal("all MGA-OUE pads identical; padding not randomized")
	}
}

func TestMGAOLHCoversTargets(t *testing.T) {
	const d, eps = 102, 0.5
	targets := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	a, _ := NewMGA(targets)
	olh, _ := ldp.NewOLH(d, eps)
	r := rng.New(6)
	reports, err := a.CraftReports(r, olh, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Average target coverage must beat the random-hash baseline (1/g per
	// target) by a wide margin thanks to the seed search.
	var covered float64
	for _, rep := range reports {
		for _, tt := range targets {
			if rep.Supports(tt) {
				covered++
			}
		}
	}
	avg := covered / float64(len(reports)) / float64(len(targets))
	baseline := 1 / float64(olh.G())
	if avg < baseline+0.1 {
		t.Fatalf("MGA-OLH coverage %v not above baseline %v", avg, baseline)
	}
}

func TestMGACountsMatchReports(t *testing.T) {
	targets := []int{1, 4, 9}
	a, _ := NewMGA(targets)
	for _, p := range protocols(t, 25, 0.5) {
		assertReportsMatchCounts(t, a, p, 400, 40, 0.06)
	}
}

// TestMGAFrequencyGainShape verifies the attack's headline effect: the
// poisoned estimate inflates target frequencies by roughly beta/(p-q) in
// total for GRR and r*beta/(p-q) for OUE (paper Fig. 4 discussion).
func TestMGAFrequencyGainShape(t *testing.T) {
	const d, eps = 102, 0.5
	const n, m = int64(40000), int64(2000) // beta ~= 0.048
	targets, _ := RandomTargets(rng.New(10), d, 10)
	a, _ := NewMGA(targets)

	genuineCounts := make([]int64, d) // all users hold item 0
	genuineCounts[0] = n

	for _, p := range protocols(t, d, eps) {
		r := rng.New(11)
		pr := p.Params()
		gen, err := p.SimulateGenuineCounts(r, genuineCounts)
		if err != nil {
			t.Fatal(err)
		}
		mal, err := a.CraftCounts(r, p, m)
		if err != nil {
			t.Fatal(err)
		}
		combined := make([]int64, d)
		for v := range combined {
			combined[v] = gen[v] + mal[v]
		}
		poisoned, err := ldp.Unbias(combined, n+m, pr)
		if err != nil {
			t.Fatal(err)
		}
		genOnly, err := ldp.Unbias(gen, n, pr)
		if err != nil {
			t.Fatal(err)
		}
		var fg float64
		for _, tt := range targets {
			fg += poisoned[tt] - genOnly[tt]
		}
		beta := float64(m) / float64(n+m)
		var want float64
		switch p.Name() {
		case "GRR":
			// Each malicious report adds 1 to one target's count; unbiasing
			// subtracts q per report: FG ~= beta*(1-r*q)/(p-q).
			want = beta * (1 - 10*pr.Q) / (pr.P - pr.Q)
		case "OUE":
			// Every report supports all 10 targets: FG ~= 10*beta*(1-q)/(p-q).
			want = 10 * beta * (1 - pr.Q) / (pr.P - pr.Q)
		case "OLH":
			// Between the single-target and all-target bounds.
			lo, hi := beta/(pr.P-pr.Q)*0.3, 10*beta/(pr.P-pr.Q)
			if fg < lo || fg > hi {
				t.Fatalf("OLH FG %v outside [%v,%v]", fg, lo, hi)
			}
			continue
		}
		if math.Abs(fg-want)/want > 0.25 {
			t.Fatalf("%s FG %v want ~%v", p.Name(), fg, want)
		}
	}
}

func TestMGASUECrafting(t *testing.T) {
	const d, eps = 40, 0.5
	targets := []int{1, 9, 17}
	a, _ := NewMGA(targets)
	sue, err := ldp.NewSUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	reports, err := a.CraftReports(r, sue, 100)
	if err != nil {
		t.Fatal(err)
	}
	pr := sue.Params()
	wantOnes := int(math.Round(pr.P + float64(d-1)*pr.Q))
	for _, rep := range reports {
		o := rep.(ldp.OUEReport)
		for _, tt := range targets {
			if !o.Bits.Get(tt) {
				t.Fatalf("MGA-SUE report missing target %d", tt)
			}
		}
		if o.Bits.Count() != wantOnes {
			t.Fatalf("MGA-SUE report has %d ones want %d", o.Bits.Count(), wantOnes)
		}
	}
	counts, err := a.CraftCounts(r, sue, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range targets {
		if counts[tt] != 500 {
			t.Fatalf("MGA-SUE fast path target count %d want 500", counts[tt])
		}
	}
}
