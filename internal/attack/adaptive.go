package attack

import (
	"errors"
	"fmt"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

// Adaptive is the paper's adaptive attack AA (§V-C), the sampling
// framework that unifies existing poisoning attacks: the attacker fixes a
// distribution P over the (encoded) domain and each malicious user submits
// crafted data for an item drawn from P.
type Adaptive struct {
	// Dist is the attacker-designed distribution over items (sums to 1).
	Dist []float64
}

// NewAdaptive validates the attacker-designed distribution.
func NewAdaptive(dist []float64) (*Adaptive, error) {
	if len(dist) == 0 {
		return nil, errors.New("attack: empty adaptive distribution")
	}
	if !stats.AllFinite(dist) {
		return nil, errors.New("attack: non-finite adaptive distribution")
	}
	var total float64
	for v, p := range dist {
		if p < 0 {
			return nil, fmt.Errorf("attack: negative probability %g at item %d", p, v)
		}
		total += p
	}
	if total <= 0 {
		return nil, errors.New("attack: zero-mass adaptive distribution")
	}
	norm := make([]float64, len(dist))
	for v, p := range dist {
		norm[v] = p / total
	}
	return &Adaptive{Dist: norm}, nil
}

// NewRandomAdaptive draws a random attacker-designed distribution over a
// domain of size d, the paper's AA instantiation ("we randomly generate
// the attacker-designed distribution", §VI-A.3). Sampling i.i.d.
// exponentials and normalizing yields a uniform point on the simplex
// (Dirichlet(1,...,1)).
func NewRandomAdaptive(r *rng.Rand, d int) (*Adaptive, error) {
	if r == nil {
		return nil, errNilRand
	}
	if d < 1 {
		return nil, fmt.Errorf("attack: invalid domain %d", d)
	}
	dist := make([]float64, d)
	for v := range dist {
		dist[v] = r.Exp()
	}
	return NewAdaptive(dist)
}

// Name implements Attack.
func (a *Adaptive) Name() string { return "AA" }

func (a *Adaptive) checkDomain(p ldp.Protocol) error {
	if len(a.Dist) != p.Params().Domain {
		return fmt.Errorf("attack: adaptive distribution over %d items, protocol domain %d",
			len(a.Dist), p.Params().Domain)
	}
	return nil
}

// CraftReports implements Attack.
func (a *Adaptive) CraftReports(r *rng.Rand, p ldp.Protocol, m int64) ([]ldp.Report, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	if err := a.checkDomain(p); err != nil {
		return nil, err
	}
	itemCounts, err := sampleItemCounts(r, a.Dist, m)
	if err != nil {
		return nil, err
	}
	return craftFromItems(r, p, itemsFromCounts(r, itemCounts))
}

// CraftCounts implements Attack.
func (a *Adaptive) CraftCounts(r *rng.Rand, p ldp.Protocol, m int64) ([]int64, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	if err := a.checkDomain(p); err != nil {
		return nil, err
	}
	itemCounts, err := sampleItemCounts(r, a.Dist, m)
	if err != nil {
		return nil, err
	}
	return countsFromItemCounts(r, p, itemCounts)
}

var _ Attack = (*Adaptive)(nil)
