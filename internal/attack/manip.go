package attack

import (
	"fmt"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// Manip is the untargeted manipulation attack (Cheu et al., S&P'21) as
// instantiated in the paper's evaluation (§VI-A.3): the attacker samples a
// malicious sub-domain H ⊆ D and each malicious user submits crafted data
// for an item drawn uniformly from H, distorting the whole aggregated
// distribution.
type Manip struct {
	// SubsetFraction is |H|/d in (0,1]; the paper samples H from D, we
	// default to one half.
	SubsetFraction float64
	// SubsetSeed makes the sub-domain choice deterministic per attack
	// instance (the per-user sampling still uses the caller's generator).
	SubsetSeed uint64
}

// NewManip returns a Manip attack with the given sub-domain fraction.
func NewManip(subsetFraction float64, subsetSeed uint64) (*Manip, error) {
	if !(subsetFraction > 0) || subsetFraction > 1 {
		return nil, fmt.Errorf("attack: Manip subset fraction %v outside (0,1]", subsetFraction)
	}
	return &Manip{SubsetFraction: subsetFraction, SubsetSeed: subsetSeed}, nil
}

// Name implements Attack.
func (a *Manip) Name() string { return "Manip" }

// subDomain returns the malicious sub-domain H for a domain of size d.
func (a *Manip) subDomain(d int) []int {
	k := int(float64(d) * a.SubsetFraction)
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	return rng.New(a.SubsetSeed).Sample(d, k)
}

// dist returns the attacker-designed distribution: uniform over H.
func (a *Manip) dist(d int) []float64 {
	h := a.subDomain(d)
	dist := make([]float64, d)
	for _, v := range h {
		dist[v] = 1 / float64(len(h))
	}
	return dist
}

// CraftReports implements Attack.
func (a *Manip) CraftReports(r *rng.Rand, p ldp.Protocol, m int64) ([]ldp.Report, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	itemCounts, err := sampleItemCounts(r, a.dist(p.Params().Domain), m)
	if err != nil {
		return nil, err
	}
	return craftFromItems(r, p, itemsFromCounts(r, itemCounts))
}

// CraftCounts implements Attack.
func (a *Manip) CraftCounts(r *rng.Rand, p ldp.Protocol, m int64) ([]int64, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	itemCounts, err := sampleItemCounts(r, a.dist(p.Params().Domain), m)
	if err != nil {
		return nil, err
	}
	return countsFromItemCounts(r, p, itemCounts)
}

var _ Attack = (*Manip)(nil)
