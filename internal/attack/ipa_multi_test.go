package attack

import (
	"math"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

func TestNewIPAValidation(t *testing.T) {
	if _, err := NewIPA(nil); err == nil {
		t.Fatal("empty dist accepted")
	}
	if _, err := NewIPA([]float64{-1, 2}); err == nil {
		t.Fatal("negative prob accepted")
	}
	if _, err := NewIPA([]float64{0}); err == nil {
		t.Fatal("zero mass accepted")
	}
	if _, err := NewIPA([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestNewMGAIPAValidation(t *testing.T) {
	if _, err := NewMGAIPA(nil, 10); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := NewMGAIPA([]int{12}, 10); err == nil {
		t.Fatal("target outside domain accepted")
	}
	a, err := NewMGAIPA([]int{2, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "MGA-IPA" {
		t.Fatalf("name %q", a.Name())
	}
	ts := a.Targets()
	if len(ts) != 2 || ts[0] != 2 || ts[1] != 5 {
		t.Fatalf("targets %v", ts)
	}
}

func TestIPAReportsAreHonestlyPerturbed(t *testing.T) {
	// Under IPA with GRR, reports must NOT all be targets: perturbation
	// flips most of them away under small epsilon.
	const d, eps = 50, 0.5
	a, err := NewMGAIPA([]int{7}, d)
	if err != nil {
		t.Fatal(err)
	}
	grr, _ := ldp.NewGRR(d, eps)
	r := rng.New(3)
	reports, err := a.CraftReports(r, grr, 5000)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, rep := range reports {
		if rep.Supports(7) {
			hits++
		}
	}
	rate := float64(hits) / 5000
	p := grr.Params().P
	if math.Abs(rate-p) > 5*math.Sqrt(p*(1-p)/5000) {
		t.Fatalf("IPA target-support rate %v want honest p=%v", rate, p)
	}
}

func TestIPACountsMatchReports(t *testing.T) {
	a, err := NewMGAIPA([]int{1, 2}, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range protocols(t, 15, 0.8) {
		assertReportsMatchCounts(t, a, p, 400, 40, 0.06)
	}
}

// TestIPAWeakerThanMGA reproduces the Fig. 8 shape at test scale: the
// frequency distortion of MGA-IPA is orders of magnitude below MGA's.
func TestIPAWeakerThanMGA(t *testing.T) {
	const d, eps = 30, 0.5
	const n, m = int64(60000), int64(3000)
	targets := []int{4, 9, 14}
	mga, _ := NewMGA(targets)
	ipa, _ := NewMGAIPA(targets, d)

	genuine := make([]int64, d)
	for v := range genuine {
		genuine[v] = n / int64(d)
	}
	trueF := make([]float64, d)
	for v := range trueF {
		trueF[v] = 1 / float64(d)
	}
	grr, _ := ldp.NewGRR(d, eps)
	r := rng.New(21)

	mseOf := func(a Attack) float64 {
		gen, err := grr.SimulateGenuineCounts(r, genuine)
		if err != nil {
			t.Fatal(err)
		}
		mal, err := a.CraftCounts(r, grr, m)
		if err != nil {
			t.Fatal(err)
		}
		comb := make([]int64, d)
		for v := range comb {
			comb[v] = gen[v] + mal[v]
		}
		fs, err := ldp.Unbias(comb, n+m, grr.Params())
		if err != nil {
			t.Fatal(err)
		}
		var mse float64
		for v := range fs {
			dv := fs[v] - trueF[v]
			mse += dv * dv
		}
		return mse / float64(d)
	}
	mgaMSE := mseOf(mga)
	ipaMSE := mseOf(ipa)
	if mgaMSE < 10*ipaMSE {
		t.Fatalf("MGA MSE %v not >> IPA MSE %v", mgaMSE, ipaMSE)
	}
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil, nil); err == nil {
		t.Fatal("no attacks accepted")
	}
	if _, err := NewMulti([]Attack{nil}, nil); err == nil {
		t.Fatal("nil attack accepted")
	}
	a, _ := NewManip(0.5, 1)
	if _, err := NewMulti([]Attack{a}, []float64{1, 2}); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if _, err := NewMulti([]Attack{a}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewMulti([]Attack{a}, []float64{0}); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestNewMultiAdaptive(t *testing.T) {
	r := rng.New(5)
	multi, err := NewMultiAdaptive(r, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Attacks) != 5 {
		t.Fatalf("%d attacks", len(multi.Attacks))
	}
	if _, err := NewMultiAdaptive(r, 0, 20); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewMultiAdaptive(nil, 2, 20); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestMultiSplitsAllUsers(t *testing.T) {
	r := rng.New(6)
	multi, err := NewMultiAdaptive(r, 4, 15)
	if err != nil {
		t.Fatal(err)
	}
	grr, _ := ldp.NewGRR(15, 0.5)
	reports, err := multi.CraftReports(r, grr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1000 {
		t.Fatalf("%d reports want 1000", len(reports))
	}
	counts, err := multi.CraftCounts(r, grr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sumCounts(counts) != 1000 {
		t.Fatalf("counts sum %d want 1000", sumCounts(counts))
	}
}

func TestMultiTargetsUnion(t *testing.T) {
	m1, _ := NewMGA([]int{1, 2})
	m2, _ := NewMGA([]int{2, 3})
	manip, _ := NewManip(0.5, 7)
	multi, err := NewMulti([]Attack{m1, manip, m2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := multi.Targets()
	want := map[int]bool{1: true, 2: true, 3: true}
	if len(ts) != 3 {
		t.Fatalf("targets %v", ts)
	}
	for _, v := range ts {
		if !want[v] {
			t.Fatalf("unexpected target %d", v)
		}
	}
}

func TestMultiName(t *testing.T) {
	m1, _ := NewMGA([]int{1})
	manip, _ := NewManip(0.5, 7)
	multi, _ := NewMulti([]Attack{m1, manip}, nil)
	if multi.Name() != "MUL(MGA,Manip)" {
		t.Fatalf("name %q", multi.Name())
	}
}

func TestMultiWeights(t *testing.T) {
	// With weights 1:0, all users go to the first attack.
	m1, _ := NewMGA([]int{0})
	m2, _ := NewMGA([]int{9})
	multi, err := NewMulti([]Attack{m1, m2}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	grr, _ := ldp.NewGRR(10, 0.5)
	r := rng.New(8)
	counts, err := multi.CraftCounts(r, grr, 500)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 500 || counts[9] != 0 {
		t.Fatalf("weighted split wrong: %v", counts)
	}
}
