package attack

import (
	"math"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

func protocols(t *testing.T, d int, eps float64) []ldp.Protocol {
	t.Helper()
	grr, err := ldp.NewGRR(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	oue, err := ldp.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	olh, err := ldp.NewOLH(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	return []ldp.Protocol{grr, oue, olh}
}

func sumCounts(cs []int64) int64 {
	var s int64
	for _, c := range cs {
		s += c
	}
	return s
}

// assertReportsMatchCounts checks that the fast count path and the exact
// report path of an attack agree in expectation per item.
func assertReportsMatchCounts(t *testing.T, a Attack, p ldp.Protocol, m int64, trials int, tolPerItem float64) {
	t.Helper()
	d := p.Params().Domain
	r := rng.New(777)
	fastMean := make([]float64, d)
	exactMean := make([]float64, d)
	for i := 0; i < trials; i++ {
		fast, err := a.CraftCounts(r, p, m)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := a.CraftReports(r, p, m)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(reports)) != m {
			t.Fatalf("%s/%s: %d reports want %d", a.Name(), p.Name(), len(reports), m)
		}
		exact, err := ldp.CountSupports(reports, d)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < d; v++ {
			fastMean[v] += float64(fast[v])
			exactMean[v] += float64(exact[v])
		}
	}
	for v := 0; v < d; v++ {
		fm := fastMean[v] / float64(trials)
		em := exactMean[v] / float64(trials)
		if math.Abs(fm-em) > tolPerItem*float64(m) {
			t.Fatalf("%s/%s: item %d fast mean %v exact mean %v",
				a.Name(), p.Name(), v, fm, em)
		}
	}
}

func TestManipValidation(t *testing.T) {
	if _, err := NewManip(0, 1); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, err := NewManip(1.5, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := NewManip(math.NaN(), 1); err == nil {
		t.Fatal("NaN fraction accepted")
	}
}

func TestManipStaysInSubdomain(t *testing.T) {
	const d = 40
	a, err := NewManip(0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := map[int]bool{}
	for _, v := range a.subDomain(d) {
		h[v] = true
	}
	if len(h) != 20 {
		t.Fatalf("|H| = %d want 20", len(h))
	}
	grr, _ := ldp.NewGRR(d, 0.5)
	r := rng.New(1)
	reports, err := a.CraftReports(r, grr, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !h[int(rep.(ldp.GRRReport))] {
			t.Fatalf("report %d outside sub-domain", int(rep.(ldp.GRRReport)))
		}
	}
}

func TestManipDeterministicSubdomain(t *testing.T) {
	a1, _ := NewManip(0.3, 9)
	a2, _ := NewManip(0.3, 9)
	h1, h2 := a1.subDomain(50), a2.subDomain(50)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("sub-domain not deterministic for equal seeds")
		}
	}
}

func TestManipCountsMatchReports(t *testing.T) {
	a, _ := NewManip(0.5, 3)
	for _, p := range protocols(t, 20, 0.5) {
		assertReportsMatchCounts(t, a, p, 500, 40, 0.05)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(nil); err == nil {
		t.Fatal("empty dist accepted")
	}
	if _, err := NewAdaptive([]float64{-0.5, 1.5}); err == nil {
		t.Fatal("negative prob accepted")
	}
	if _, err := NewAdaptive([]float64{0, 0}); err == nil {
		t.Fatal("zero mass accepted")
	}
	if _, err := NewAdaptive([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
	a, err := NewAdaptive([]float64{2, 6}) // unnormalized
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Dist[0]-0.25) > 1e-12 || math.Abs(a.Dist[1]-0.75) > 1e-12 {
		t.Fatalf("not normalized: %v", a.Dist)
	}
}

func TestNewRandomAdaptiveIsDistribution(t *testing.T) {
	r := rng.New(5)
	a, err := NewRandomAdaptive(r, 30)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range a.Dist {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("dist sums to %v", sum)
	}
	if _, err := NewRandomAdaptive(nil, 10); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewRandomAdaptive(r, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestAdaptiveDomainMismatch(t *testing.T) {
	a, _ := NewAdaptive([]float64{0.5, 0.5})
	grr, _ := ldp.NewGRR(10, 0.5)
	r := rng.New(1)
	if _, err := a.CraftReports(r, grr, 10); err == nil {
		t.Fatal("domain mismatch accepted (reports)")
	}
	if _, err := a.CraftCounts(r, grr, 10); err == nil {
		t.Fatal("domain mismatch accepted (counts)")
	}
}

func TestAdaptiveFollowsDistribution(t *testing.T) {
	d := 10
	dist := make([]float64, d)
	dist[2] = 0.7
	dist[8] = 0.3
	a, _ := NewAdaptive(dist)
	grr, _ := ldp.NewGRR(d, 0.5)
	r := rng.New(6)
	counts, err := a.CraftCounts(r, grr, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(counts[2]) / 100000; math.Abs(got-0.7) > 0.01 {
		t.Fatalf("item 2 rate %v", got)
	}
	if counts[0] != 0 || counts[5] != 0 {
		t.Fatal("zero-probability items got mass")
	}
}

func TestAdaptiveCountsMatchReports(t *testing.T) {
	r := rng.New(7)
	a, err := NewRandomAdaptive(r, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range protocols(t, 15, 0.5) {
		assertReportsMatchCounts(t, a, p, 400, 40, 0.05)
	}
}

func TestCraftZeroUsers(t *testing.T) {
	r := rng.New(8)
	a, _ := NewRandomAdaptive(r, 12)
	for _, p := range protocols(t, 12, 0.5) {
		reports, err := a.CraftReports(r, p, 0)
		if err != nil || len(reports) != 0 {
			t.Fatalf("%s: zero users gave %d reports (err %v)", p.Name(), len(reports), err)
		}
		counts, err := a.CraftCounts(r, p, 0)
		if err != nil || sumCounts(counts) != 0 {
			t.Fatalf("%s: zero users gave counts %v (err %v)", p.Name(), counts, err)
		}
	}
}

func TestCraftNegativeUsersRejected(t *testing.T) {
	r := rng.New(9)
	a, _ := NewRandomAdaptive(r, 12)
	grr, _ := ldp.NewGRR(12, 0.5)
	if _, err := a.CraftReports(r, grr, -1); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, err := a.CraftCounts(nil, grr, 1); err == nil {
		t.Fatal("nil rng accepted")
	}
}
