package attack

import (
	"errors"
	"fmt"
	"math"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// MGA is the Maximal Gain Attack (Cao et al., USENIX Security'21), the
// targeted poisoning attack of the paper's evaluation. Malicious users
// submit crafted encoded data that maximizes the frequency gain of the
// attacker-chosen target items:
//
//   - GRR: each malicious user reports a target item (uniformly chosen),
//     the only way a GRR report can support a target.
//   - OUE: each malicious report sets ALL target bits to 1 and pads with
//     random non-target bits so the total number of ones matches the
//     honest expectation l = round(p + (d-1)q), evading count-based
//     anomaly detection.
//   - OLH: each malicious user searches hash seeds for one whose most
//     popular hash value covers as many targets as possible and reports
//     that (seed, value) pair. We realize the per-user search as a pool of
//     independently searched reports that users draw from uniformly.
type MGA struct {
	targets []int
	// SeedSearchBudget is the number of random seeds each pool entry
	// examines when attacking OLH.
	SeedSearchBudget int
	// PoolSize is the number of distinct crafted OLH reports; malicious
	// users draw uniformly from the pool.
	PoolSize int
}

// Option defaults.
const (
	defaultSeedSearchBudget = 128
	defaultPoolSize         = 64
)

// NewMGA builds an MGA instance promoting the given target items.
func NewMGA(targets []int) (*MGA, error) {
	if len(targets) == 0 {
		return nil, errors.New("attack: MGA requires at least one target")
	}
	seen := map[int]bool{}
	for _, t := range targets {
		if t < 0 {
			return nil, fmt.Errorf("attack: negative target %d", t)
		}
		if seen[t] {
			return nil, fmt.Errorf("attack: duplicate target %d", t)
		}
		seen[t] = true
	}
	cp := append([]int(nil), targets...)
	return &MGA{
		targets:          cp,
		SeedSearchBudget: defaultSeedSearchBudget,
		PoolSize:         defaultPoolSize,
	}, nil
}

// RandomTargets draws r distinct target items uniformly from a domain of
// size d, the paper's target-selection procedure ("we randomly select
// target items", §VI-A.3).
func RandomTargets(rand *rng.Rand, d, r int) ([]int, error) {
	if rand == nil {
		return nil, errNilRand
	}
	if r < 1 || r > d {
		return nil, fmt.Errorf("attack: target count %d outside [1,%d]", r, d)
	}
	return rand.Sample(d, r), nil
}

// Name implements Attack.
func (a *MGA) Name() string { return "MGA" }

// Targets implements Targeted.
func (a *MGA) Targets() []int { return append([]int(nil), a.targets...) }

func (a *MGA) checkDomain(p ldp.Protocol) error {
	d := p.Params().Domain
	for _, t := range a.targets {
		if t >= d {
			return fmt.Errorf("attack: target %d outside domain [0,%d)", t, d)
		}
	}
	return nil
}

// oueOnes returns the number of ones an honest OUE report has in
// expectation: l = round(p + (d-1)q), never below the target count so all
// targets fit.
func oueOnes(pr ldp.Params, r int) int {
	l := int(math.Round(pr.P + float64(pr.Domain-1)*pr.Q))
	if l < r {
		l = r
	}
	if l > pr.Domain {
		l = pr.Domain
	}
	return l
}

// craftOUEReport builds one malicious OUE report: all targets plus
// (l - r) random non-target pads.
func (a *MGA) craftOUEReport(r *rng.Rand, pr ldp.Params) ldp.Report {
	d := pr.Domain
	bits := ldp.NewBitset(d)
	isTarget := make([]bool, d)
	for _, t := range a.targets {
		bits.Set(t)
		isTarget[t] = true
	}
	pad := oueOnes(pr, len(a.targets)) - len(a.targets)
	if pad > 0 && d > len(a.targets) {
		nonTargets := make([]int, 0, d-len(a.targets))
		for v := 0; v < d; v++ {
			if !isTarget[v] {
				nonTargets = append(nonTargets, v)
			}
		}
		if pad > len(nonTargets) {
			pad = len(nonTargets)
		}
		for _, idx := range r.Sample(len(nonTargets), pad) {
			bits.Set(nonTargets[idx])
		}
	}
	return ldp.OUEReport{Bits: bits}
}

// searchOLHReport finds a (seed, value) pair maximizing the number of
// targets hashing to value, examining budget random seeds.
func (a *MGA) searchOLHReport(r *rng.Rand, olh *ldp.OLH) ldp.OLHReport {
	g := olh.G()
	bestSeed, bestValue, bestCover := uint64(0), 0, -1
	hist := make([]int, g)
	budget := a.SeedSearchBudget
	if budget < 1 {
		budget = 1
	}
	for trial := 0; trial < budget; trial++ {
		seed := r.Uint64()
		for i := range hist {
			hist[i] = 0
		}
		// Premix once per candidate seed; the per-target stage is cheap.
		pre := olh.Hasher(seed)
		for _, t := range a.targets {
			hist[pre.ToRange(uint64(t), g)]++
		}
		for v, c := range hist {
			if c > bestCover {
				bestSeed, bestValue, bestCover = seed, v, c
			}
		}
		if bestCover == len(a.targets) {
			break // full coverage; no better seed exists
		}
	}
	return ldp.OLHReport{Seed: bestSeed, Value: bestValue, G: g}
}

// olhPool builds the pool of searched OLH reports.
func (a *MGA) olhPool(r *rng.Rand, olh *ldp.OLH) []ldp.OLHReport {
	size := a.PoolSize
	if size < 1 {
		size = 1
	}
	pool := make([]ldp.OLHReport, size)
	for i := range pool {
		pool[i] = a.searchOLHReport(r, olh)
	}
	return pool
}

// CraftReports implements Attack.
func (a *MGA) CraftReports(r *rng.Rand, p ldp.Protocol, m int64) ([]ldp.Report, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	if err := a.checkDomain(p); err != nil {
		return nil, err
	}
	reports := make([]ldp.Report, m)
	switch proto := p.(type) {
	case *ldp.GRR:
		for i := range reports {
			reports[i] = ldp.GRRReport(a.targets[r.Intn(len(a.targets))])
		}
	case *ldp.OUE, *ldp.SUE:
		// Unary-encoding protocols share the crafted-vector shape: all
		// target bits plus padding to the honest expected count of ones.
		for i := range reports {
			reports[i] = a.craftOUEReport(r, p.Params())
		}
	case *ldp.OLH:
		pool := a.olhPool(r, proto)
		for i := range reports {
			reports[i] = pool[r.Intn(len(pool))]
		}
	default:
		return nil, fmt.Errorf("attack: MGA does not support protocol %s", p.Name())
	}
	return reports, nil
}

// CraftCounts implements Attack.
func (a *MGA) CraftCounts(r *rng.Rand, p ldp.Protocol, m int64) ([]int64, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	if err := a.checkDomain(p); err != nil {
		return nil, err
	}
	pr := p.Params()
	d := pr.Domain
	counts := make([]int64, d)
	if m == 0 {
		return counts, nil
	}
	switch proto := p.(type) {
	case *ldp.GRR:
		dist := make([]float64, d)
		for _, t := range a.targets {
			dist[t] = 1
		}
		return r.Multinomial(m, dist), nil
	case *ldp.OUE, *ldp.SUE:
		pad := oueOnes(pr, len(a.targets)) - len(a.targets)
		isTarget := make([]bool, d)
		for _, t := range a.targets {
			isTarget[t] = true
			counts[t] = m
		}
		nonTargets := d - len(a.targets)
		if pad > 0 && nonTargets > 0 {
			padProb := float64(pad) / float64(nonTargets)
			for v := 0; v < d; v++ {
				if !isTarget[v] {
					counts[v] = r.Binomial(m, padProb)
				}
			}
		}
		return counts, nil
	case *ldp.OLH:
		pool := a.olhPool(r, proto)
		uniform := make([]float64, len(pool))
		for i := range uniform {
			uniform[i] = 1
		}
		usage := r.Multinomial(m, uniform)
		support := make([]int64, d)
		for i, rep := range pool {
			if usage[i] == 0 {
				continue
			}
			for v := range support {
				support[v] = 0
			}
			rep.AddSupports(support)
			for v, s := range support {
				counts[v] += s * usage[i]
			}
		}
		return counts, nil
	default:
		return nil, fmt.Errorf("attack: MGA does not support protocol %s", p.Name())
	}
}

var (
	_ Attack   = (*MGA)(nil)
	_ Targeted = (*MGA)(nil)
)
