package attack

import (
	"errors"
	"fmt"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

// IPA is the input poisoning attack of §VII-B: malicious users choose
// their *inputs* adversarially (sampled from InputDist) but then follow
// the LDP perturbation honestly. The perturbation dilutes the attack,
// which is why the paper finds IPA 2–4 orders of magnitude weaker than
// the general poisoning model (Fig. 8).
type IPA struct {
	// InputDist is the distribution malicious inputs are drawn from.
	InputDist []float64
	// label distinguishes named variants in reports (e.g. "MGA-IPA").
	label string
}

// NewIPA builds an input-poisoning attack with the given input
// distribution.
func NewIPA(inputDist []float64) (*IPA, error) {
	return newIPA(inputDist, "IPA")
}

func newIPA(inputDist []float64, label string) (*IPA, error) {
	if len(inputDist) == 0 {
		return nil, errors.New("attack: empty IPA input distribution")
	}
	if !stats.AllFinite(inputDist) {
		return nil, errors.New("attack: non-finite IPA input distribution")
	}
	var total float64
	for v, p := range inputDist {
		if p < 0 {
			return nil, fmt.Errorf("attack: negative probability %g at item %d", p, v)
		}
		total += p
	}
	if total <= 0 {
		return nil, errors.New("attack: zero-mass IPA input distribution")
	}
	norm := make([]float64, len(inputDist))
	for v, p := range inputDist {
		norm[v] = p / total
	}
	return &IPA{InputDist: norm, label: label}, nil
}

// NewMGAIPA builds MGA under input poisoning (§VII-B, Fig. 8–9): inputs
// are uniform over the target items, then honestly perturbed.
func NewMGAIPA(targets []int, domain int) (*MGAIPA, error) {
	if len(targets) == 0 {
		return nil, errors.New("attack: MGA-IPA requires targets")
	}
	dist := make([]float64, domain)
	for _, t := range targets {
		if t < 0 || t >= domain {
			return nil, fmt.Errorf("attack: target %d outside domain [0,%d)", t, domain)
		}
		dist[t] = 1
	}
	inner, err := newIPA(dist, "MGA-IPA")
	if err != nil {
		return nil, err
	}
	return &MGAIPA{IPA: inner, targets: append([]int(nil), targets...)}, nil
}

// MGAIPA is IPA with MGA's target-promoting input distribution; it also
// exposes the target set for Detection and LDPRecover*.
type MGAIPA struct {
	*IPA
	targets []int
}

// Targets implements Targeted.
func (a *MGAIPA) Targets() []int { return append([]int(nil), a.targets...) }

// Name implements Attack.
func (a *IPA) Name() string { return a.label }

func (a *IPA) checkDomain(p ldp.Protocol) error {
	if len(a.InputDist) != p.Params().Domain {
		return fmt.Errorf("attack: IPA distribution over %d items, protocol domain %d",
			len(a.InputDist), p.Params().Domain)
	}
	return nil
}

// CraftReports implements Attack: sample inputs, perturb honestly.
func (a *IPA) CraftReports(r *rng.Rand, p ldp.Protocol, m int64) ([]ldp.Report, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	if err := a.checkDomain(p); err != nil {
		return nil, err
	}
	itemCounts, err := sampleItemCounts(r, a.InputDist, m)
	if err != nil {
		return nil, err
	}
	return ldp.PerturbAll(p, r, itemCounts)
}

// CraftCounts implements Attack: sample inputs, simulate honest
// aggregation over them.
func (a *IPA) CraftCounts(r *rng.Rand, p ldp.Protocol, m int64) ([]int64, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	if err := a.checkDomain(p); err != nil {
		return nil, err
	}
	if m == 0 {
		return make([]int64, p.Params().Domain), nil
	}
	itemCounts, err := sampleItemCounts(r, a.InputDist, m)
	if err != nil {
		return nil, err
	}
	return p.SimulateGenuineCounts(r, itemCounts)
}

var (
	_ Attack   = (*IPA)(nil)
	_ Attack   = (*MGAIPA)(nil)
	_ Targeted = (*MGAIPA)(nil)
)
