package attack

import (
	"errors"
	"fmt"
	"strings"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// Multi composes several attackers controlling disjoint groups of
// malicious users (the multi-attacker threat model of §VII-C). The m
// malicious users are split across the attackers according to Weights
// (uniform when nil); as the paper observes, this is equivalent to one
// attacker sampling from the mixture distribution.
type Multi struct {
	Attacks []Attack
	Weights []float64
}

// NewMulti validates and builds a multi-attacker composition.
func NewMulti(attacks []Attack, weights []float64) (*Multi, error) {
	if len(attacks) == 0 {
		return nil, errors.New("attack: Multi requires at least one attack")
	}
	for i, a := range attacks {
		if a == nil {
			return nil, fmt.Errorf("attack: nil attack at index %d", i)
		}
	}
	if weights != nil {
		if len(weights) != len(attacks) {
			return nil, fmt.Errorf("attack: %d weights for %d attacks", len(weights), len(attacks))
		}
		var total float64
		for i, w := range weights {
			if w < 0 || w != w {
				return nil, fmt.Errorf("attack: invalid weight %g at index %d", w, i)
			}
			total += w
		}
		if total <= 0 {
			return nil, errors.New("attack: zero-mass weights")
		}
	}
	return &Multi{Attacks: attacks, Weights: weights}, nil
}

// NewMultiAdaptive builds the paper's MUL-AA experiment setup: k
// attackers, each running an independently random adaptive attack, with
// malicious users assigned uniformly at random.
func NewMultiAdaptive(r *rng.Rand, k, domain int) (*Multi, error) {
	if r == nil {
		return nil, errNilRand
	}
	if k < 1 {
		return nil, fmt.Errorf("attack: invalid attacker count %d", k)
	}
	attacks := make([]Attack, k)
	for i := range attacks {
		aa, err := NewRandomAdaptive(r, domain)
		if err != nil {
			return nil, err
		}
		attacks[i] = aa
	}
	return NewMulti(attacks, nil)
}

// Name implements Attack.
func (a *Multi) Name() string {
	names := make([]string, len(a.Attacks))
	for i, sub := range a.Attacks {
		names[i] = sub.Name()
	}
	return "MUL(" + strings.Join(names, ",") + ")"
}

// split apportions m malicious users across the attackers.
func (a *Multi) split(r *rng.Rand, m int64) []int64 {
	w := a.Weights
	if w == nil {
		w = make([]float64, len(a.Attacks))
		for i := range w {
			w[i] = 1
		}
	}
	return r.Multinomial(m, w)
}

// CraftReports implements Attack.
func (a *Multi) CraftReports(r *rng.Rand, p ldp.Protocol, m int64) ([]ldp.Report, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	var out []ldp.Report
	for i, mi := range a.split(r, m) {
		reports, err := a.Attacks[i].CraftReports(r, p, mi)
		if err != nil {
			return nil, fmt.Errorf("attack %d (%s): %w", i, a.Attacks[i].Name(), err)
		}
		out = append(out, reports...)
	}
	return out, nil
}

// CraftCounts implements Attack.
func (a *Multi) CraftCounts(r *rng.Rand, p ldp.Protocol, m int64) ([]int64, error) {
	if err := checkArgs(r, p, m); err != nil {
		return nil, err
	}
	counts := make([]int64, p.Params().Domain)
	for i, mi := range a.split(r, m) {
		sub, err := a.Attacks[i].CraftCounts(r, p, mi)
		if err != nil {
			return nil, fmt.Errorf("attack %d (%s): %w", i, a.Attacks[i].Name(), err)
		}
		for v, c := range sub {
			counts[v] += c
		}
	}
	return counts, nil
}

// Targets implements Targeted when any sub-attack is targeted, returning
// the union of their target sets.
func (a *Multi) Targets() []int {
	seen := map[int]bool{}
	var out []int
	for _, sub := range a.Attacks {
		if tg, ok := sub.(Targeted); ok {
			for _, t := range tg.Targets() {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
	}
	return out
}

var _ Attack = (*Multi)(nil)
